// Package ingest is the streaming ingestion subsystem: it accepts an
// unbounded stream of edge insert/delete updates, coalesces them into
// batches (size- and time-triggered flush), partitions each batch by the
// target's shard function, and applies per-shard sub-batches on a fixed
// pool of per-shard worker goroutines with bounded admission and
// caller-selectable backpressure (block or reject-with-error).
//
// Ordering and consistency model: updates pushed by one goroutine are
// applied to their shard in push order (one FIFO queue and one worker per
// shard), so the drained target converges to exactly the state a
// sequential replay of the stream would produce — the property the
// differential tests pin. Reads against the target during ingestion are
// safe (core.Parallel read-locks per shard) but only eventually consistent;
// Flush is the read-your-writes barrier: it returns once every update
// admitted before the call has been applied.
package ingest

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"graphtinker/internal/core"
)

// Update is one streamed mutation (an insert/update or a delete); it is
// core.EdgeOp, so pipelines and the sharded store share one op vocabulary.
type Update = core.EdgeOp

// Insert builds an insert/update op.
func Insert(src, dst uint64, w float32) Update { return core.InsertOp(src, dst, w) }

// Delete builds a deletion op.
func Delete(src, dst uint64) Update { return core.DeleteOp(src, dst) }

// Target is the sharded write surface a pipeline drains into.
// *core.Parallel satisfies it; tests substitute instrumented fakes.
type Target interface {
	// NumShards reports how many independent write domains exist.
	NumShards() int
	// ShardOf routes a source vertex to its write domain.
	ShardOf(src uint64) int
	// ApplyShard applies an ordered op sequence to one shard, returning
	// how many inserts were new and how many deletes hit a live edge. It
	// is only ever called from the shard's single worker goroutine.
	ApplyShard(shard int, ops []Update) (inserted, deleted int)
}

// Policy selects what Push does when the pipeline's admission budget is
// exhausted.
type Policy uint8

const (
	// Block makes Push wait until workers free budget (default).
	Block Policy = iota
	// Reject makes Push fail fast with ErrBackpressure.
	Reject
)

// ErrClosed is returned by pushes after Close.
var ErrClosed = errors.New("ingest: pipeline closed")

// ErrBackpressure is returned under the Reject policy when the pipeline's
// in-flight budget is exhausted.
var ErrBackpressure = errors.New("ingest: pipeline backpressure (queue full)")

// Options configures a pipeline; zero values select the defaults.
type Options struct {
	// MaxBatch is the size-triggered flush threshold: the shared buffer is
	// flushed to the shard queues when it holds this many updates
	// (default 8192).
	MaxBatch int
	// FlushInterval is the time-triggered flush period, bounding how stale
	// a trickle of updates can get (default 2ms; negative disables the
	// timer so only size triggers and explicit Flush calls drain).
	FlushInterval time.Duration
	// MaxPending bounds updates admitted but not yet applied (buffered +
	// queued). Pushes beyond it hit the backpressure Policy
	// (default 8 × MaxBatch).
	MaxPending int
	// Policy selects blocking or rejecting backpressure.
	Policy Policy
	// Recorder, when non-nil, receives queue-depth/batch-size/latency
	// telemetry.
	Recorder *Recorder
}

// DefaultMaxBatch is the default size-triggered flush threshold.
const DefaultMaxBatch = 8192

// DefaultFlushInterval is the default time-triggered flush period.
const DefaultFlushInterval = 2 * time.Millisecond

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 8 * o.MaxBatch
	}
	return o
}

// Totals summarizes a pipeline's lifetime work.
type Totals struct {
	// Pushed counts updates admitted.
	Pushed uint64 `json:"pushed"`
	// Inserted / Deleted count ops that changed the target (new edges /
	// removed live edges), as reported by ApplyShard.
	Inserted uint64 `json:"inserted"`
	Deleted  uint64 `json:"deleted"`
}

// job is one unit handed to a shard worker: either an ordered sub-batch or
// a barrier marker (ack non-nil).
type job struct {
	ops []Update
	at  time.Time
	ack chan<- struct{}
}

// shardQueue is one shard's unbounded FIFO (admission is bounded globally
// by MaxPending, so its backlog never exceeds the pipeline budget).
type shardQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	jobs   []job
	closed bool
}

func newShardQueue() *shardQueue {
	q := &shardQueue{}
	q.cond.L = &q.mu
	return q
}

// push appends a job; it reports false when the queue already shut down
// (only barriers race that window).
func (q *shardQueue) push(j job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.jobs = append(q.jobs, j)
	q.cond.Signal()
	return true
}

// pop blocks for the next job; ok=false means closed and drained.
func (q *shardQueue) pop() (job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.jobs) == 0 {
		return job{}, false
	}
	j := q.jobs[0]
	q.jobs = q.jobs[1:]
	return j, true
}

func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Pipeline is the streaming coalescer; see the package comment for the
// ordering/consistency model. All methods are safe for concurrent use.
type Pipeline struct {
	target Target
	opts   Options
	rec    *Recorder

	mu      sync.Mutex
	notFull sync.Cond
	buf     []Update
	pending int // admitted but unapplied updates
	pushed  uint64
	closed  bool

	queues  []*shardQueue
	workers sync.WaitGroup

	timerStop chan struct{}
	timerDone chan struct{}

	totals struct {
		mu                sync.Mutex
		inserted, deleted uint64
	}
}

// New starts a pipeline over the target: one worker goroutine per shard
// plus (unless disabled) the flush timer. The caller must Close it.
func New(target Target, opts Options) (*Pipeline, error) {
	n := target.NumShards()
	if n <= 0 {
		return nil, fmt.Errorf("ingest: target reports %d shards", n)
	}
	p := &Pipeline{
		target: target,
		opts:   opts.withDefaults(),
		rec:    opts.Recorder,
		queues: make([]*shardQueue, n),
	}
	p.notFull.L = &p.mu
	for i := range p.queues {
		p.queues[i] = newShardQueue()
	}
	p.workers.Add(n)
	for i := 0; i < n; i++ {
		go p.runWorker(i)
	}
	if p.opts.FlushInterval > 0 {
		p.timerStop = make(chan struct{})
		p.timerDone = make(chan struct{})
		go p.runTimer()
	}
	return p, nil
}

// MustNew is New for known-valid targets; it panics on error.
func MustNew(target Target, opts Options) *Pipeline {
	p, err := New(target, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// Push admits one update. Under Block it waits for budget; under Reject it
// returns ErrBackpressure when the in-flight budget is exhausted. Returns
// ErrClosed after Close.
func (p *Pipeline) Push(u Update) error {
	return p.PushBatch([]Update{u})
}

// PushBatch admits a sequence of updates in order, amortizing one lock
// acquisition across the slice. Under Block a batch larger than the free
// budget is admitted in chunks as workers drain; under Reject the push
// fails without admitting anything unless the whole batch fits.
func (p *Pipeline) PushBatch(ops []Update) error {
	if len(ops) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.opts.Policy == Reject && p.opts.MaxPending-p.pending < len(ops) {
		// Hand whatever is buffered to the workers so the backlog drains
		// even if the caller never pushes again, then fail fast.
		p.flushLocked()
		p.rec.rejected()
		return ErrBackpressure
	}
	for len(ops) > 0 {
		for p.pending >= p.opts.MaxPending && !p.closed {
			// The budget may be held entirely by the unflushed buffer; flush
			// it so the workers can free budget while we wait.
			p.flushLocked()
			p.notFull.Wait()
		}
		if p.closed {
			return ErrClosed
		}
		n := p.opts.MaxPending - p.pending
		if n > len(ops) {
			n = len(ops)
		}
		p.buf = append(p.buf, ops[:n]...)
		p.pending += n
		p.pushed += uint64(n)
		ops = ops[n:]
		if p.rec != nil {
			p.rec.QueueDepth.Set(int64(p.pending))
		}
		if len(p.buf) >= p.opts.MaxBatch {
			p.flushLocked()
		}
	}
	return nil
}

// rejected is a nil-safe reject-counter bump.
func (r *Recorder) rejected() {
	if r != nil {
		r.Rejected.Inc()
	}
}

// flushLocked partitions the buffer into per-shard ordered sub-batches and
// hands them to the shard queues. Caller holds p.mu.
func (p *Pipeline) flushLocked() {
	if len(p.buf) == 0 {
		return
	}
	now := time.Now()
	n := len(p.queues)
	counts := make([]int, n)
	for i := range p.buf {
		counts[p.target.ShardOf(p.buf[i].Src)]++
	}
	parts := make([][]Update, n)
	for s := range parts {
		if counts[s] > 0 {
			parts[s] = make([]Update, 0, counts[s])
		}
	}
	for _, u := range p.buf {
		s := p.target.ShardOf(u.Src)
		parts[s] = append(parts[s], u)
	}
	p.buf = p.buf[:0]
	if p.rec != nil {
		p.rec.Flushes.Inc()
	}
	for s, part := range parts {
		if len(part) > 0 {
			p.queues[s].push(job{ops: part, at: now})
		}
	}
}

// runTimer fires time-triggered flushes until Close.
func (p *Pipeline) runTimer() {
	defer close(p.timerDone)
	t := time.NewTicker(p.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-p.timerStop:
			return
		case <-t.C:
			p.mu.Lock()
			if !p.closed {
				p.flushLocked()
			}
			p.mu.Unlock()
		}
	}
}

// runWorker drains one shard's queue until it is closed and empty.
func (p *Pipeline) runWorker(shard int) {
	defer p.workers.Done()
	q := p.queues[shard]
	for {
		j, ok := q.pop()
		if !ok {
			return
		}
		if j.ack != nil {
			j.ack <- struct{}{}
			continue
		}
		start := time.Now()
		ins, del := p.target.ApplyShard(shard, j.ops)
		if p.rec != nil {
			done := time.Now()
			p.rec.ApplyLatency.ObserveDuration(done.Sub(start))
			p.rec.FlushLatency.ObserveDuration(done.Sub(j.at))
			p.rec.BatchSize.Observe(uint64(len(j.ops)))
		}
		p.totals.mu.Lock()
		p.totals.inserted += uint64(ins)
		p.totals.deleted += uint64(del)
		p.totals.mu.Unlock()
		p.mu.Lock()
		p.pending -= len(j.ops)
		if p.rec != nil {
			p.rec.QueueDepth.Set(int64(p.pending))
		}
		p.notFull.Broadcast()
		p.mu.Unlock()
	}
}

// Flush is the read-your-writes barrier: it flushes the buffer and returns
// once every update admitted before the call has been applied to its
// shard. Concurrent pushes may land behind the barrier; they are not
// waited for. Calling Flush on a closed pipeline returns immediately.
func (p *Pipeline) Flush() {
	p.mu.Lock()
	p.flushLocked()
	p.mu.Unlock()
	ack := make(chan struct{}, len(p.queues))
	sent := 0
	for _, q := range p.queues {
		if q.push(job{ack: ack}) {
			sent++
		}
	}
	for i := 0; i < sent; i++ {
		<-ack
	}
}

// Pending reports updates admitted but not yet applied.
func (p *Pipeline) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Totals snapshots the pipeline's lifetime counters. Safe at any time; the
// inserted/deleted counts trail pushes by whatever is still in flight.
func (p *Pipeline) Totals() Totals {
	p.mu.Lock()
	pushed := p.pushed
	p.mu.Unlock()
	p.totals.mu.Lock()
	defer p.totals.mu.Unlock()
	return Totals{Pushed: pushed, Inserted: p.totals.inserted, Deleted: p.totals.deleted}
}

// Close drains everything admitted so far, stops the timer and the
// workers, and returns the final totals. Blocked pushers are released with
// ErrClosed. Close is idempotent; later calls return ErrClosed.
func (p *Pipeline) Close() (Totals, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return p.Totals(), ErrClosed
	}
	p.closed = true
	p.flushLocked()
	p.notFull.Broadcast()
	p.mu.Unlock()
	if p.timerStop != nil {
		close(p.timerStop)
		<-p.timerDone
	}
	for _, q := range p.queues {
		q.close()
	}
	p.workers.Wait()
	return p.Totals(), nil
}
