// Package ingest is the streaming ingestion subsystem: it accepts an
// unbounded stream of edge insert/delete updates, coalesces them into
// batches (size- and time-triggered flush), partitions each batch by the
// target's shard function, and applies per-shard sub-batches on a fixed
// pool of per-shard worker goroutines with bounded admission and
// caller-selectable backpressure (block or reject-with-error).
//
// Ordering and consistency model: updates pushed by one goroutine are
// applied to their shard in push order (one FIFO queue and one worker per
// shard), so the drained target converges to exactly the state a
// sequential replay of the stream would produce — the property the
// differential tests pin. Reads against the target during ingestion are
// safe (core.Parallel read-locks per shard) but only eventually consistent;
// Flush is the read-your-writes barrier: it returns once every update
// admitted before the call has been applied.
package ingest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"graphtinker/internal/core"
	"graphtinker/internal/faultinject"
	"graphtinker/internal/wal"
)

// Update is one streamed mutation (an insert/update or a delete); it is
// core.EdgeOp, so pipelines and the sharded store share one op vocabulary.
type Update = core.EdgeOp

// Insert builds an insert/update op.
func Insert(src, dst uint64, w float32) Update { return core.InsertOp(src, dst, w) }

// Delete builds a deletion op.
func Delete(src, dst uint64) Update { return core.DeleteOp(src, dst) }

// Target is the sharded write surface a pipeline drains into.
// *core.Parallel satisfies it; tests substitute instrumented fakes.
type Target interface {
	// NumShards reports how many independent write domains exist.
	NumShards() int
	// ShardOf routes a source vertex to its write domain.
	ShardOf(src uint64) int
	// ApplyShard applies an ordered op sequence to one shard, returning
	// how many inserts were new and how many deletes hit a live edge. It
	// is only ever called from the shard's single worker goroutine. The
	// ops slice is valid only for the duration of the call: the pipeline
	// recycles flushed sub-batch buffers, so implementations must copy
	// anything they keep.
	//
	//gtlint:noretain ops
	ApplyShard(shard int, ops []Update) (inserted, deleted int)
}

// Policy selects what Push does when the pipeline's admission budget is
// exhausted.
type Policy uint8

const (
	// Block makes Push wait until workers free budget (default).
	Block Policy = iota
	// Reject makes Push fail fast with ErrBackpressure.
	Reject
)

// ErrClosed is returned by pushes after Close.
var ErrClosed = errors.New("ingest: pipeline closed")

// ErrBackpressure is returned under the Reject policy when the pipeline's
// in-flight budget is exhausted.
var ErrBackpressure = errors.New("ingest: pipeline backpressure (queue full)")

// ErrDegraded is returned by pushes once the pipeline has lost its
// durability guarantee (persistent WAL failure): rather than silently
// acknowledging updates it can no longer log, the pipeline sheds them.
// FlushSync also reports it when any shard has been degraded by a
// contained worker panic, so callers learn the applied state is partial.
var ErrDegraded = errors.New("ingest: pipeline degraded")

// ErrTimeout is returned when a FlushSync or Close barrier misses the
// configured FlushTimeout deadline.
var ErrTimeout = errors.New("ingest: deadline exceeded")

// Options configures a pipeline; zero values select the defaults.
type Options struct {
	// MaxBatch is the size-triggered flush threshold: the shared buffer is
	// flushed to the shard queues when it holds this many updates
	// (default 8192).
	MaxBatch int
	// FlushInterval is the time-triggered flush period, bounding how stale
	// a trickle of updates can get (default 2ms; negative disables the
	// timer so only size triggers and explicit Flush calls drain).
	FlushInterval time.Duration
	// MaxPending bounds updates admitted but not yet applied (buffered +
	// queued). Pushes beyond it hit the backpressure Policy
	// (default 8 × MaxBatch).
	MaxPending int
	// Policy selects blocking or rejecting backpressure.
	Policy Policy
	// Recorder, when non-nil, receives queue-depth/batch-size/latency
	// telemetry.
	Recorder *Recorder
	// WAL, when non-nil, makes the pipeline durable: every flush appends
	// its coalesced batch to the log (in push order, under the pipeline
	// lock) before handing sub-batches to the shard workers, so the log is
	// always an exact prefix of the admitted stream. FlushSync and Close
	// fsync the log at their barrier. The pipeline does not Open or Close
	// the log; ownership stays with the caller.
	WAL *wal.Log
	// FlushTimeout, when positive, bounds how long FlushSync and Close wait
	// for their barrier before giving up with ErrTimeout (default 0: wait
	// forever).
	FlushTimeout time.Duration
	// MaxRetries bounds transient-failure retries on WAL appends and shard
	// applies before the pipeline degrades (default 4).
	MaxRetries int
	// RetryBase is the first retry backoff; it doubles per attempt with
	// jitter, capped at 50ms (default 1ms). WAL-append retries sleep under
	// the pipeline lock, so the worst case stalls admission for roughly
	// RetryBase × 2^MaxRetries.
	RetryBase time.Duration
}

// DefaultMaxBatch is the default size-triggered flush threshold.
const DefaultMaxBatch = 8192

// DefaultFlushInterval is the default time-triggered flush period.
const DefaultFlushInterval = 2 * time.Millisecond

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = DefaultMaxBatch
	}
	if o.FlushInterval == 0 {
		o.FlushInterval = DefaultFlushInterval
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 8 * o.MaxBatch
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 4
	}
	if o.RetryBase <= 0 {
		o.RetryBase = time.Millisecond
	}
	return o
}

// Totals summarizes a pipeline's lifetime work.
type Totals struct {
	// Pushed counts updates admitted.
	Pushed uint64 `json:"pushed"`
	// Inserted / Deleted count ops that changed the target (new edges /
	// removed live edges), as reported by ApplyShard.
	Inserted uint64 `json:"inserted"`
	Deleted  uint64 `json:"deleted"`
	// Dropped counts admitted updates discarded because their shard was
	// degraded by a contained panic or exhausted apply retries. They are
	// missing from the in-memory store but — when a WAL is attached — still
	// in the log, so recovery restores them.
	Dropped uint64 `json:"dropped"`
	// Panics counts worker panics contained by the pipeline.
	Panics uint64 `json:"panics"`
	// DegradedShards counts shards currently in the degraded (dropping)
	// state.
	DegradedShards int `json:"degraded_shards"`
	// WALDegraded reports that WAL appends were abandoned after persistent
	// failure; pushes are shed with ErrDegraded once this is set.
	WALDegraded bool `json:"wal_degraded"`
}

// job is one unit handed to a shard worker: either an ordered sub-batch or
// a barrier marker (ack non-nil).
type job struct {
	ops []Update
	at  time.Time
	ack chan<- struct{}
}

// shardQueue is one shard's unbounded FIFO (admission is bounded globally
// by MaxPending, so its backlog never exceeds the pipeline budget). It is
// a head-indexed slice rather than a pop-front reslice so the backing
// array is reused once the queue drains — the steady-state push path
// stops allocating after the backlog's high-water mark.
type shardQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	jobs   []job
	head   int
	closed bool
}

func newShardQueue() *shardQueue {
	q := &shardQueue{}
	q.cond.L = &q.mu
	return q
}

// push appends a job; it reports false when the queue already shut down
// (only barriers race that window).
func (q *shardQueue) push(j job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.jobs = append(q.jobs, j)
	q.cond.Signal()
	return true
}

// pop blocks for the next job; ok=false means closed and drained.
func (q *shardQueue) pop() (job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head >= len(q.jobs) && !q.closed {
		q.cond.Wait()
	}
	if q.head >= len(q.jobs) {
		return job{}, false
	}
	j := q.jobs[q.head]
	q.jobs[q.head] = job{} // drop references so recycled buffers aren't pinned
	q.head++
	if q.head == len(q.jobs) {
		q.jobs = q.jobs[:0]
		q.head = 0
	}
	return j, true
}

func (q *shardQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// abort closes the queue and discards its backlog — the crash path.
func (q *shardQueue) abort() {
	q.mu.Lock()
	q.jobs = nil
	q.head = 0
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Pipeline is the streaming coalescer; see the package comment for the
// ordering/consistency model. All methods are safe for concurrent use.
type Pipeline struct {
	target Target
	opts   Options
	rec    *Recorder

	mu      sync.Mutex
	notFull sync.Cond
	buf     []Update
	pending int // admitted but unapplied updates
	pushed  uint64
	closed  bool

	// flushLocked's partition scratch, reused across flushes (guarded by
	// mu): per-shard counts, the cached shard index of every buffered
	// update (each source id is hashed exactly once per flush), and the
	// header slice the sub-batches are staged into.
	counts   []int
	shardIdx []int32
	parts    [][]Update

	// freeParts recycles flushed sub-batch buffers: workers return them
	// after apply, flushLocked reuses them, so steady-state coalescing
	// allocates nothing. Bounded to maxFree — the whole admission budget
	// staged as sub-batches plus one flush in hand — so a full backlog
	// circulates without allocating while burst memory stays proportional
	// to MaxPending.
	freeMu    sync.Mutex
	freeParts [][]Update
	maxFree   int

	queues  []*shardQueue
	workers sync.WaitGroup

	// degraded[i] marks shard i as dropping (contained panic or exhausted
	// apply retries); degradedShards is the count, walDegraded the
	// pipeline-wide durability loss flag.
	degraded       []atomic.Bool
	degradedShards atomic.Int32
	closeDone      chan struct{} // closed once shutdown (Close/Abort) finishes
	closeTotals    Totals
	walDegraded    atomic.Bool

	timerStop chan struct{}
	timerDone chan struct{}

	totals struct {
		mu                sync.Mutex
		inserted, deleted uint64
		dropped, panics   uint64
	}
}

// New starts a pipeline over the target: one worker goroutine per shard
// plus (unless disabled) the flush timer. The caller must Close it.
func New(target Target, opts Options) (*Pipeline, error) {
	n := target.NumShards()
	if n <= 0 {
		return nil, fmt.Errorf("ingest: target reports %d shards", n)
	}
	p := &Pipeline{
		target:    target,
		opts:      opts.withDefaults(),
		rec:       opts.Recorder,
		queues:    make([]*shardQueue, n),
		degraded:  make([]atomic.Bool, n),
		closeDone: make(chan struct{}),
	}
	p.notFull.L = &p.mu
	p.maxFree = n * (p.opts.MaxPending/p.opts.MaxBatch + 1)
	for i := range p.queues {
		p.queues[i] = newShardQueue()
	}
	p.workers.Add(n)
	for i := 0; i < n; i++ {
		go p.runWorker(i)
	}
	if p.opts.FlushInterval > 0 {
		p.timerStop = make(chan struct{})
		p.timerDone = make(chan struct{})
		go p.runTimer()
	}
	return p, nil
}

// MustNew is New for known-valid targets; it panics on error.
func MustNew(target Target, opts Options) *Pipeline {
	p, err := New(target, opts)
	if err != nil {
		panic(err)
	}
	return p
}

// Push admits one update. Under Block it waits for budget; under Reject it
// returns ErrBackpressure when the in-flight budget is exhausted. Returns
// ErrClosed after Close.
func (p *Pipeline) Push(u Update) error {
	return p.PushBatch([]Update{u})
}

// PushBatch admits a sequence of updates in order, amortizing one lock
// acquisition across the slice. Under Block a batch larger than the free
// budget is admitted in chunks as workers drain; under Reject the push
// fails without admitting anything unless the whole batch fits.
func (p *Pipeline) PushBatch(ops []Update) error {
	if len(ops) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	if p.walDegraded.Load() {
		// Durability is gone; shed rather than acknowledge updates the
		// pipeline can no longer log (regardless of backpressure policy).
		p.rec.rejected()
		return ErrDegraded
	}
	if p.opts.Policy == Reject && p.opts.MaxPending-p.pending < len(ops) {
		// Hand whatever is buffered to the workers so the backlog drains
		// even if the caller never pushes again, then fail fast.
		//gtlint:ignore lockhold WAL retry backoff under p.mu is deliberate: producers must stall while durability recovers (see Options.RetryBase)
		p.flushLocked()
		p.rec.rejected()
		return ErrBackpressure
	}
	for len(ops) > 0 {
		for p.pending >= p.opts.MaxPending && !p.closed {
			// The budget may be held entirely by the unflushed buffer; flush
			// it so the workers can free budget while we wait.
			//gtlint:ignore lockhold WAL retry backoff under p.mu is deliberate: producers must stall while durability recovers (see Options.RetryBase)
			p.flushLocked()
			p.notFull.Wait()
		}
		if p.closed {
			return ErrClosed
		}
		n := p.opts.MaxPending - p.pending
		if n > len(ops) {
			n = len(ops)
		}
		p.buf = append(p.buf, ops[:n]...)
		p.pending += n
		p.pushed += uint64(n)
		ops = ops[n:]
		if p.rec != nil {
			p.rec.QueueDepth.Set(int64(p.pending))
		}
		if len(p.buf) >= p.opts.MaxBatch {
			//gtlint:ignore lockhold WAL retry backoff under p.mu is deliberate: producers must stall while durability recovers (see Options.RetryBase)
			p.flushLocked()
		}
	}
	return nil
}

// rejected is a nil-safe reject-counter bump.
func (r *Recorder) rejected() {
	if r != nil {
		r.Rejected.Inc()
	}
}

// flushLocked appends the buffer to the WAL (if any), then partitions it
// into per-shard ordered sub-batches and hands them to the shard queues.
// Caller holds p.mu — which is what makes the WAL an exact prefix of the
// admitted stream: appends happen in push order with no interleaving.
func (p *Pipeline) flushLocked() {
	if len(p.buf) == 0 {
		return
	}
	if p.opts.WAL != nil && !p.walDegraded.Load() {
		if err := p.appendWAL(p.buf); err != nil {
			// Persistent WAL failure: durability is lost from here on.
			// Keep applying the already-admitted tail in memory so reads
			// stay coherent, but flip the degraded flag so new pushes are
			// shed with ErrDegraded instead of silently acknowledged.
			p.walDegraded.Store(true)
			if p.rec != nil {
				p.rec.WALFailures.Inc()
				p.rec.DegradedMode.Set(1)
			}
		}
	}
	now := time.Now()
	n := len(p.queues)
	if p.counts == nil {
		p.counts = make([]int, n)
		p.parts = make([][]Update, n)
	}
	for s := range p.counts {
		p.counts[s] = 0
	}
	if cap(p.shardIdx) < len(p.buf) {
		p.shardIdx = make([]int32, len(p.buf))
	}
	idx := p.shardIdx[:len(p.buf)]
	for i := range p.buf {
		s := p.target.ShardOf(p.buf[i].Src)
		idx[i] = int32(s)
		p.counts[s]++
	}
	for s, c := range p.counts {
		if c > 0 {
			p.parts[s] = p.getPart(c)
		}
	}
	for i, u := range p.buf {
		s := idx[i]
		p.parts[s] = append(p.parts[s], u)
	}
	p.buf = p.buf[:0]
	if p.rec != nil {
		p.rec.Flushes.Inc()
	}
	for s, part := range p.parts {
		if len(part) > 0 {
			p.queues[s].push(job{ops: part, at: now})
		}
		p.parts[s] = nil // ownership moved to the queue/worker
	}
}

// getPart returns a recycled sub-batch buffer (empty, capacity ≥ n when
// one of that size has circulated before) or a fresh one. Fresh buffers
// get 25% headroom so the per-flush jitter in shard sizes doesn't keep
// invalidating recycled capacities.
func (p *Pipeline) getPart(n int) []Update {
	p.freeMu.Lock()
	if last := len(p.freeParts) - 1; last >= 0 {
		s := p.freeParts[last]
		p.freeParts[last] = nil
		p.freeParts = p.freeParts[:last]
		p.freeMu.Unlock()
		if cap(s) >= n {
			return s[:0]
		}
	} else {
		p.freeMu.Unlock()
	}
	return make([]Update, 0, n+n/4)
}

// putPart returns a drained sub-batch buffer to the free list. The list is
// bounded so a burst's buffers don't pin memory forever.
func (p *Pipeline) putPart(s []Update) {
	if s == nil {
		return
	}
	p.freeMu.Lock()
	if len(p.freeParts) < p.maxFree {
		p.freeParts = append(p.freeParts, s[:0])
	}
	p.freeMu.Unlock()
}

// runTimer fires time-triggered flushes until Close.
func (p *Pipeline) runTimer() {
	defer close(p.timerDone)
	t := time.NewTicker(p.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-p.timerStop:
			return
		case <-t.C:
			p.mu.Lock()
			if !p.closed {
				//gtlint:ignore lockhold WAL retry backoff under p.mu is deliberate: producers must stall while durability recovers (see Options.RetryBase)
				p.flushLocked()
			}
			p.mu.Unlock()
		}
	}
}

// runWorker drains one shard's queue until it is closed and empty. A
// worker never dies: panics are contained per job, so a poisoned shard
// degrades (drops its ops) while the worker keeps acking barriers — Flush
// and Close complete, and every other shard stays live.
func (p *Pipeline) runWorker(shard int) {
	defer p.workers.Done()
	q := p.queues[shard]
	for {
		j, ok := q.pop()
		if !ok {
			return
		}
		if j.ack != nil {
			j.ack <- struct{}{}
			continue
		}
		if p.degraded[shard].Load() {
			p.dropJob(j)
		} else {
			p.applyJob(shard, j)
		}
		// The sub-batch is fully applied or dropped either way; recycle
		// its buffer for a later flush.
		p.putPart(j.ops)
	}
}

// applyJob applies one sub-batch, containing panics: a panicking shard is
// marked degraded and the job's ops counted dropped (pending is still
// released, so barriers and blocked pushers never hang on a dead shard).
// When a WAL is attached the dropped ops are already logged, so recovery
// repairs the loss.
func (p *Pipeline) applyJob(shard int, j job) {
	defer func() {
		if r := recover(); r != nil {
			p.markDegraded(shard)
			p.totals.mu.Lock()
			p.totals.panics++
			p.totals.mu.Unlock()
			if p.rec != nil {
				p.rec.WorkerPanics.Inc()
			}
			p.dropJob(j)
		}
	}()
	start := time.Now()
	ins, del, err := p.applyShard(shard, j.ops)
	if err != nil {
		p.markDegraded(shard)
		p.dropJob(j)
		return
	}
	if p.rec != nil {
		done := time.Now()
		p.rec.ApplyLatency.ObserveDuration(done.Sub(start))
		p.rec.FlushLatency.ObserveDuration(done.Sub(j.at))
		p.rec.BatchSize.Observe(uint64(len(j.ops)))
	}
	p.totals.mu.Lock()
	p.totals.inserted += uint64(ins)
	p.totals.deleted += uint64(del)
	p.totals.mu.Unlock()
	p.release(len(j.ops))
}

// applyShard runs the target apply with bounded retries against the
// "ingest/apply" failpoint (the injection hook for transient shard
// failures); exhausted retries degrade the shard via applyJob's error path.
func (p *Pipeline) applyShard(shard int, ops []Update) (int, int, error) {
	for attempt := 0; ; attempt++ {
		if err := faultinject.Inject("ingest/apply"); err != nil {
			if attempt >= p.opts.MaxRetries {
				return 0, 0, fmt.Errorf("ingest: shard %d apply failed after %d attempts: %w", shard, attempt+1, err)
			}
			if p.rec != nil {
				p.rec.Retries.Inc()
			}
			p.backoff(attempt)
			continue
		}
		ins, del := p.target.ApplyShard(shard, ops)
		return ins, del, nil
	}
}

// appendWAL appends one coalesced flush with bounded retries. Sticky log
// failures (ErrFailed: possibly torn tail, appending would corrupt;
// ErrClosed) are not retried. Caller holds p.mu, so backoff sleeps stall
// admission — bounded by MaxRetries doublings of RetryBase.
func (p *Pipeline) appendWAL(ops []Update) error {
	for attempt := 0; ; attempt++ {
		_, err := p.opts.WAL.Append(ops)
		if err == nil {
			return nil
		}
		if errors.Is(err, wal.ErrFailed) || errors.Is(err, wal.ErrClosed) || attempt >= p.opts.MaxRetries {
			return err
		}
		if p.rec != nil {
			p.rec.Retries.Inc()
		}
		p.backoff(attempt)
	}
}

// backoff sleeps 2^attempt × RetryBase (capped at 50ms) with half-width
// jitter so concurrent retriers decorrelate.
func (p *Pipeline) backoff(attempt int) {
	d := p.opts.RetryBase << uint(attempt)
	if max := 50 * time.Millisecond; d > max || d <= 0 {
		d = max
	}
	time.Sleep(d/2 + time.Duration(rand.Int63n(int64(d/2)+1)))
}

// markDegraded flips shard into the dropping state (idempotently).
func (p *Pipeline) markDegraded(shard int) {
	if p.degraded[shard].CompareAndSwap(false, true) {
		n := p.degradedShards.Add(1)
		if p.rec != nil {
			p.rec.DegradedShards.Set(int64(n))
			p.rec.DegradedMode.Set(1)
		}
	}
}

// dropJob discards a job's ops (degraded shard) while still releasing
// their admission budget.
func (p *Pipeline) dropJob(j job) {
	p.totals.mu.Lock()
	p.totals.dropped += uint64(len(j.ops))
	p.totals.mu.Unlock()
	if p.rec != nil {
		p.rec.Dropped.Add(uint64(len(j.ops)))
	}
	p.release(len(j.ops))
}

// release returns n updates' worth of admission budget.
func (p *Pipeline) release(n int) {
	p.mu.Lock()
	p.pending -= n
	if p.rec != nil {
		p.rec.QueueDepth.Set(int64(p.pending))
	}
	p.notFull.Broadcast()
	p.mu.Unlock()
}

// Flush is the read-your-writes barrier: it flushes the buffer and returns
// once every update admitted before the call has been applied to its
// shard. Concurrent pushes may land behind the barrier; they are not
// waited for. Calling Flush on a closed pipeline returns immediately.
// Flush ignores failures; durability-sensitive callers use FlushSync.
func (p *Pipeline) Flush() { _ = p.FlushSync() }

// FlushSync is Flush with the failure surface exposed: it additionally
// fsyncs the WAL (if attached) once the barrier completes — the
// acknowledged-means-durable point — and reports ErrTimeout when the
// barrier misses FlushTimeout, the WAL sync error, or ErrDegraded when a
// shard or the WAL has degraded (the applied state is partial / the log
// has stopped).
func (p *Pipeline) FlushSync() error {
	p.mu.Lock()
	//gtlint:ignore lockhold WAL retry backoff under p.mu is deliberate: producers must stall while durability recovers (see Options.RetryBase)
	p.flushLocked()
	p.mu.Unlock()
	if err := p.barrier(p.opts.FlushTimeout); err != nil {
		return err
	}
	if p.opts.WAL != nil && !p.walDegraded.Load() {
		if err := p.opts.WAL.Sync(); err != nil && !errors.Is(err, wal.ErrClosed) {
			return fmt.Errorf("ingest: flush: wal sync: %w", err)
		}
	}
	if p.walDegraded.Load() || p.degradedShards.Load() > 0 {
		return ErrDegraded
	}
	return nil
}

// barrier pushes an ack job down every live queue and waits for the acks,
// bounded by timeout when positive.
func (p *Pipeline) barrier(timeout time.Duration) error {
	ack := make(chan struct{}, len(p.queues))
	sent := 0
	for _, q := range p.queues {
		if q.push(job{ack: ack}) {
			sent++
		}
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for i := 0; i < sent; i++ {
		select {
		case <-ack:
		case <-deadline:
			return fmt.Errorf("ingest: flush barrier (%d/%d shards): %w", i, sent, ErrTimeout)
		}
	}
	return nil
}

// Pending reports updates admitted but not yet applied.
func (p *Pipeline) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Totals snapshots the pipeline's lifetime counters. Safe at any time; the
// inserted/deleted counts trail pushes by whatever is still in flight.
func (p *Pipeline) Totals() Totals {
	p.mu.Lock()
	pushed := p.pushed
	p.mu.Unlock()
	p.totals.mu.Lock()
	defer p.totals.mu.Unlock()
	return Totals{
		Pushed:         pushed,
		Inserted:       p.totals.inserted,
		Deleted:        p.totals.deleted,
		Dropped:        p.totals.dropped,
		Panics:         p.totals.panics,
		DegradedShards: int(p.degradedShards.Load()),
		WALDegraded:    p.walDegraded.Load(),
	}
}

// Close drains everything admitted so far, stops the timer and the
// workers, fsyncs the WAL (if attached), and returns the final totals.
// Blocked pushers are released with ErrClosed. Close is idempotent and
// safe under concurrency: the first caller performs the shutdown, every
// later (or concurrent) caller blocks until that shutdown finishes and
// then gets the same final totals plus ErrClosed. A positive FlushTimeout
// bounds the drain; on ErrTimeout the workers are left to finish in the
// background and the totals are a snapshot.
func (p *Pipeline) Close() (Totals, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.closeDone
		return p.closeTotals, ErrClosed
	}
	p.closed = true
	//gtlint:ignore lockhold WAL retry backoff under p.mu is deliberate: producers must stall while durability recovers (see Options.RetryBase)
	p.flushLocked()
	p.notFull.Broadcast()
	p.mu.Unlock()
	if p.timerStop != nil {
		close(p.timerStop)
		<-p.timerDone
	}
	for _, q := range p.queues {
		q.close()
	}
	var err error
	if p.opts.FlushTimeout > 0 {
		drained := make(chan struct{})
		go func() { p.workers.Wait(); close(drained) }()
		t := time.NewTimer(p.opts.FlushTimeout)
		defer t.Stop()
		select {
		case <-drained:
		case <-t.C:
			err = fmt.Errorf("ingest: close drain: %w", ErrTimeout)
		}
	} else {
		p.workers.Wait()
	}
	if err == nil && p.opts.WAL != nil && !p.walDegraded.Load() {
		if serr := p.opts.WAL.Sync(); serr != nil && !errors.Is(serr, wal.ErrClosed) {
			err = fmt.Errorf("ingest: close: wal sync: %w", serr)
		}
	}
	p.closeTotals = p.Totals()
	close(p.closeDone)
	return p.closeTotals, err
}

// Abort shuts the pipeline down without draining: the coalescing buffer
// and every queued sub-batch are discarded, workers exit after at most one
// in-flight job, and blocked pushers are released with ErrClosed. The WAL,
// if any, is left exactly as-is — not flushed, not synced — so Abort plus
// wal.Log.Crash models a process killed mid-stream for the chaos suite.
func (p *Pipeline) Abort() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.closeDone
		return
	}
	p.closed = true
	p.buf = p.buf[:0]
	p.notFull.Broadcast()
	p.mu.Unlock()
	if p.timerStop != nil {
		close(p.timerStop)
		<-p.timerDone
	}
	for _, q := range p.queues {
		q.abort()
	}
	p.workers.Wait()
	p.closeTotals = p.Totals()
	close(p.closeDone)
}
