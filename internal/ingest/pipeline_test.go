package ingest

import (
	"errors"
	"sync"
	"testing"
	"time"

	"graphtinker/internal/core"
	"graphtinker/internal/testutil"
)

func newParallel(t testing.TB, shards int) *core.Parallel {
	t.Helper()
	p, err := core.NewParallel(core.DefaultConfig(), shards)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineReadYourWritesAfterFlush(t *testing.T) {
	par := newParallel(t, 4)
	pl := MustNew(par, Options{MaxBatch: 64, FlushInterval: -1})
	for i := uint64(0); i < 1000; i++ {
		if err := pl.Push(Insert(i%100, i, float32(i)+1)); err != nil {
			t.Fatal(err)
		}
	}
	pl.Flush()
	if got := par.NumEdges(); got != 1000 {
		t.Fatalf("NumEdges after Flush = %d, want 1000", got)
	}
	for i := uint64(0); i < 1000; i++ {
		if w, ok := par.FindEdge(i%100, i); !ok || w != float32(i)+1 {
			t.Fatalf("FindEdge(%d,%d) = (%g,%v) after Flush", i%100, i, w, ok)
		}
	}
	tot, err := pl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Pushed != 1000 || tot.Inserted != 1000 || tot.Deleted != 0 {
		t.Fatalf("totals = %+v, want 1000 pushed/inserted", tot)
	}
}

func TestPipelinePreservesPerPairOpOrder(t *testing.T) {
	par := newParallel(t, 4)
	// One big buffer flush: insert/delete/insert for the same pair must
	// land in order, leaving the edge present with the last weight.
	pl := MustNew(par, Options{MaxBatch: 1 << 20, FlushInterval: -1})
	for pair := uint64(0); pair < 500; pair++ {
		mustPush(t, pl, Insert(pair, pair+1, 1))
		mustPush(t, pl, Delete(pair, pair+1))
		mustPush(t, pl, Insert(pair, pair+1, 7))
	}
	pl.Flush()
	for pair := uint64(0); pair < 500; pair++ {
		w, ok := par.FindEdge(pair, pair+1)
		if !ok || w != 7 {
			t.Fatalf("pair %d: got (%g,%v), want (7,true)", pair, w, ok)
		}
	}
	tot, _ := pl.Close()
	if tot.Inserted != 1000 || tot.Deleted != 500 {
		t.Fatalf("totals = %+v, want 1000 inserted / 500 deleted", tot)
	}
}

func TestPipelineTimerFlush(t *testing.T) {
	par := newParallel(t, 2)
	pl := MustNew(par, Options{MaxBatch: 1 << 20, FlushInterval: time.Millisecond})
	defer pl.Close()
	mustPush(t, pl, Insert(1, 2, 3))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := par.FindEdge(1, 2); ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("time-triggered flush never made the edge visible")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPipelineClosedPushFails(t *testing.T) {
	par := newParallel(t, 2)
	pl := MustNew(par, Options{})
	if _, err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pl.Push(Insert(1, 2, 3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	if _, err := pl.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v, want ErrClosed", err)
	}
	// Flush on a closed pipeline must not deadlock.
	pl.Flush()
}

// slowTarget is a single-shard Target whose applies wait for release,
// letting tests hold the pipeline's budget full deterministically.
type slowTarget struct {
	gate    chan struct{}
	mu      sync.Mutex
	applied int
}

func (s *slowTarget) NumShards() int       { return 1 }
func (s *slowTarget) ShardOf(_ uint64) int { return 0 }
func (s *slowTarget) ApplyShard(_ int, ops []Update) (int, int) {
	<-s.gate
	s.mu.Lock()
	s.applied += len(ops)
	s.mu.Unlock()
	return len(ops), 0
}

func TestPipelineRejectBackpressure(t *testing.T) {
	st := &slowTarget{gate: make(chan struct{})}
	rec := NewRecorder()
	pl := MustNew(st, Options{MaxBatch: 4, MaxPending: 8, Policy: Reject, FlushInterval: -1, Recorder: rec})
	for i := 0; i < 8; i++ {
		mustPush(t, pl, Insert(uint64(i), 1, 1))
	}
	if err := pl.Push(Insert(99, 1, 1)); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("push over budget: %v, want ErrBackpressure", err)
	}
	if got := rec.Rejected.Load(); got != 1 {
		t.Fatalf("Rejected counter = %d, want 1", got)
	}
	close(st.gate) // release the worker so Close can drain
	tot, err := pl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Pushed != 8 || tot.Inserted != 8 {
		t.Fatalf("totals = %+v, want 8 pushed/inserted", tot)
	}
}

func TestPipelineBlockBackpressure(t *testing.T) {
	st := &slowTarget{gate: make(chan struct{})}
	pl := MustNew(st, Options{MaxBatch: 4, MaxPending: 8, Policy: Block, FlushInterval: -1})
	for i := 0; i < 8; i++ {
		mustPush(t, pl, Insert(uint64(i), 1, 1))
	}
	unblocked := make(chan error, 1)
	go func() { unblocked <- pl.Push(Insert(99, 1, 1)) }()
	select {
	case err := <-unblocked:
		t.Fatalf("push over budget returned %v before the worker freed budget", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(st.gate)
	if err := <-unblocked; err != nil {
		t.Fatalf("blocked push failed after budget freed: %v", err)
	}
	tot, err := pl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if tot.Pushed != 9 {
		t.Fatalf("pushed = %d, want 9", tot.Pushed)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.applied != 9 {
		t.Fatalf("applied = %d, want 9", st.applied)
	}
}

func TestPipelineCloseReleasesBlockedPushers(t *testing.T) {
	st := &slowTarget{gate: make(chan struct{})}
	pl := MustNew(st, Options{MaxBatch: 2, MaxPending: 2, Policy: Block, FlushInterval: -1})
	mustPush(t, pl, Insert(1, 1, 1))
	mustPush(t, pl, Insert(2, 1, 1))
	errc := make(chan error, 1)
	go func() { errc <- pl.Push(Insert(3, 1, 1)) }()
	time.Sleep(20 * time.Millisecond)
	close(st.gate)
	if _, err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil && !errors.Is(err, ErrClosed) {
		t.Fatalf("blocked pusher got %v, want nil or ErrClosed", err)
	}
}

func TestPipelineMetrics(t *testing.T) {
	par := newParallel(t, 4)
	rec := NewRecorder()
	pl := MustNew(par, Options{MaxBatch: 128, FlushInterval: -1, Recorder: rec})
	ops := make([]Update, 0, 10000)
	r := &testutil.Rand{S: 5}
	for i := 0; i < 10000; i++ {
		ops = append(ops, Insert(uint64(r.Intn(500)), uint64(r.Intn(2000)), 1))
	}
	if err := pl.PushBatch(ops); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap.Flushes == 0 {
		t.Fatal("no flushes recorded")
	}
	if snap.BatchSize.Count == 0 || snap.BatchSize.Sum != 10000 {
		t.Fatalf("batch-size histogram covers %d updates over %d batches, want sum 10000",
			snap.BatchSize.Sum, snap.BatchSize.Count)
	}
	if snap.FlushLatencyNs.Count != snap.BatchSize.Count {
		t.Fatalf("flush-latency count %d != batch count %d", snap.FlushLatencyNs.Count, snap.BatchSize.Count)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth after Close = %d, want 0", snap.QueueDepth)
	}
}

func TestPipelineRejectsZeroShardTarget(t *testing.T) {
	if _, err := New(badTarget{}, Options{}); err == nil {
		t.Fatal("expected error for zero-shard target")
	}
}

type badTarget struct{}

func (badTarget) NumShards() int                      { return 0 }
func (badTarget) ShardOf(uint64) int                  { return 0 }
func (badTarget) ApplyShard(int, []Update) (int, int) { return 0, 0 }

func mustPush(t *testing.T, pl *Pipeline, u Update) {
	t.Helper()
	if err := pl.Push(u); err != nil {
		t.Fatal(err)
	}
}
