package ingest

// Concurrent stress suite: writer goroutines stream RMAT updates through
// the pipeline while reader goroutines hammer the sharded store's query
// surface. Run under `go test -race`; the assertions at the end pin the
// deterministic parts (the drained edge set is the union of the streams,
// independent of interleaving), while the race detector checks the rest.

import (
	"sync"
	"sync/atomic"
	"testing"

	"graphtinker/internal/rmat"
	"graphtinker/internal/testutil"
)

func rmatStream(t *testing.T, scale int, edgeFactor, seed uint64) []Update {
	t.Helper()
	g, err := rmat.NewGenerator(rmat.Graph500Params(scale, edgeFactor, seed))
	if err != nil {
		t.Fatal(err)
	}
	var ops []Update
	for {
		e, ok := g.Next()
		if !ok {
			break
		}
		ops = append(ops, Insert(e.Src, e.Dst, e.Weight))
	}
	return ops
}

func TestStressWritersAndReaders(t *testing.T) {
	const writers, readers = 4, 4
	scale, edgeFactor := 13, uint64(8)
	if testing.Short() {
		scale = 11
	}

	streams := make([][]Update, writers)
	pairs := make(map[[2]uint64]struct{})
	for w := range streams {
		streams[w] = rmatStream(t, scale, edgeFactor, uint64(100+w))
		for _, op := range streams[w] {
			pairs[[2]uint64{op.Src, op.Dst}] = struct{}{}
		}
	}

	par := newParallel(t, 4)
	rec := NewRecorder()
	pl := MustNew(par, Options{MaxBatch: 2048, Recorder: rec})

	var stop atomic.Bool
	var writerWG, readerWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(ops []Update) {
			defer writerWG.Done()
			for i := 0; i < len(ops); i += 331 {
				end := i + 331
				if end > len(ops) {
					end = len(ops)
				}
				if err := pl.PushBatch(ops[i:end]); err != nil {
					panic(err)
				}
			}
		}(streams[w])
	}

	for k := 0; k < readers; k++ {
		readerWG.Add(1)
		go func(k int) {
			defer readerWG.Done()
			r := &testutil.Rand{S: uint64(7 + k)}
			for !stop.Load() {
				src := uint64(r.Intn(1 << scale))
				_, _ = par.FindEdge(src, uint64(r.Intn(1<<scale)))
				par.ForEachOutEdge(src, func(dst uint64, w float32) bool { return true })
				_ = par.OutDegree(src)
				_ = par.Stats()
				_ = par.NumEdges()
				if r.Intn(8) == 0 {
					n := 0
					par.ForEachEdge(func(src, dst uint64, w float32) bool {
						n++
						return n < 10000 // bounded scan keeps readers hot, not hung
					})
				}
				_ = rec.Snapshot()
			}
		}(k)
	}

	writerWG.Wait()
	pl.Flush() // read-your-writes barrier while readers are still live
	var want uint64
	for _, s := range streams {
		want += uint64(len(s))
	}
	if got := pl.Totals(); got.Pushed != want {
		t.Fatalf("pushed %d, want %d", got.Pushed, want)
	}
	if got := par.NumEdges(); got != uint64(len(pairs)) {
		t.Fatalf("post-barrier store holds %d edges, streams contain %d distinct pairs", got, len(pairs))
	}
	stop.Store(true)
	readerWG.Wait()

	tot, err := pl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := par.NumEdges(); got != uint64(len(pairs)) {
		t.Fatalf("drained store holds %d edges, streams contain %d distinct pairs", got, len(pairs))
	}
	if tot.Inserted != uint64(len(pairs)) {
		t.Fatalf("inserted %d, want %d (each distinct pair is new exactly once)", tot.Inserted, len(pairs))
	}
	if snap := rec.Snapshot(); snap.QueueDepth != 0 || snap.BatchSize.Sum != want {
		t.Fatalf("recorder snapshot inconsistent after drain: depth=%d sum=%d want=%d",
			snap.QueueDepth, snap.BatchSize.Sum, want)
	}
}

// TestStressMixedOpsDisjointWriters drives interleaved inserts and deletes
// from writers owning disjoint source ranges, with readers live, and then
// requires exact oracle agreement — the strongest concurrent correctness
// statement the ordering model supports.
func TestStressMixedOpsDisjointWriters(t *testing.T) {
	const writers, readers = 4, 2
	perWriter := 40_000
	if testing.Short() {
		perWriter = 8_000
	}
	streams := make([][]Update, writers)
	for w := range streams {
		r := &testutil.Rand{S: uint64(31 + w)}
		streams[w] = randomStream(r, perWriter, w*4096, 512, 2048)
	}
	ref := testutil.NewRefGraph()
	for _, ops := range streams {
		for _, op := range ops {
			if op.Del {
				ref.Delete(op.Src, op.Dst)
			} else {
				ref.Insert(op.Src, op.Dst, op.Weight)
			}
		}
	}

	par := newParallel(t, 4)
	pl := MustNew(par, Options{MaxBatch: 1024, MaxPending: 8192})
	var stop atomic.Bool
	var writerWG, readerWG sync.WaitGroup
	for _, ops := range streams {
		writerWG.Add(1)
		go func(ops []Update) {
			defer writerWG.Done()
			for _, op := range ops {
				if err := pl.Push(op); err != nil {
					panic(err)
				}
			}
		}(ops)
	}
	for k := 0; k < readers; k++ {
		readerWG.Add(1)
		go func(k int) {
			defer readerWG.Done()
			r := &testutil.Rand{S: uint64(900 + k)}
			for !stop.Load() {
				src := uint64(r.Intn(writers * 4096))
				_, _ = par.FindEdge(src, uint64(r.Intn(2048)))
				_ = par.OutDegree(src)
				_ = par.Stats()
			}
		}(k)
	}
	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()
	if _, err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	testutil.CheckAgainstRef(t, par, ref)
}
