// Package metrics is a small, stdlib-only observability layer: atomic
// counters, gauges, and fixed-bucket histograms, plus an UpdateRecorder
// bundling the update-path instruments the GraphTinker and STINGER stores
// share. Every instrument is safe for concurrent writers and concurrent
// snapshot readers — the property the sharded core.Parallel wrapper needs
// so telemetry can be read mid-batch under the race detector.
//
// Snapshots are plain structs with JSON tags; marshalling one is the
// machine-readable telemetry artifact cmd/gtbench and cmd/gtload emit
// behind their -metrics-out flags.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go up and down).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. A sample v lands in the first
// bucket whose upper bound satisfies v <= bound; samples above the last
// bound land in an implicit overflow bucket. All updates are atomic, so
// any number of goroutines may Observe while others Snapshot.
type Histogram struct {
	bounds  []uint64 // strictly increasing inclusive upper bounds
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // MaxUint64 until the first observation
	max     atomic.Uint64
}

// NewHistogram builds a histogram over the given inclusive upper bounds
// (which must be strictly increasing); one overflow bucket is appended.
func NewHistogram(bounds []uint64) *Histogram {
	h := &Histogram{
		bounds:  append([]uint64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
	h.min.Store(math.MaxUint64)
	return h
}

// LatencyBounds are the default nanosecond bounds: powers of two from 16ns
// to ~17s, sized for single-edge update ops through whole-batch timings.
func LatencyBounds() []uint64 {
	out := make([]uint64, 0, 31)
	for b := uint64(16); b <= 16<<30; b <<= 1 {
		out = append(out, b)
	}
	return out
}

// ProbeBounds are the default probe-distance bounds (cells inspected per
// operation): a 1-2-3 / powers-of-two ladder up to 1024 cells.
func ProbeBounds() []uint64 {
	return []uint64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024}
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds (negative clamps to 0).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Count returns how many samples have been observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Bucket is one non-empty histogram bucket in a snapshot. An UpperBound of
// math.MaxUint64 marks the overflow bucket.
type Bucket struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram. Because
// observations are not globally ordered against the snapshot, Count/Sum
// and the bucket totals may disagree by in-flight samples; each field is
// individually consistent.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state, omitting empty buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if min := h.min.Load(); min != math.MaxUint64 {
		s.Min = min
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		ub := uint64(math.MaxUint64)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: ub, Count: c})
	}
	return s
}

// Mean returns the average sample, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket holding that rank; the overflow bucket reports the observed max.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			if b.UpperBound == math.MaxUint64 {
				return s.Max
			}
			return b.UpperBound
		}
	}
	return s.Max
}

// UpdateRecorder bundles the update-path instruments of one graph store
// (or one shared recorder across every shard of a Parallel wrapper):
// per-operation latency and probe-distance (cells inspected) histograms
// for the three update paths. All methods are safe for concurrent use; a
// nil recorder ignores every record call, so stores can thread one
// unconditionally.
type UpdateRecorder struct {
	InsertLatency *Histogram
	DeleteLatency *Histogram
	FindLatency   *Histogram
	InsertProbe   *Histogram
	DeleteProbe   *Histogram
	FindProbe     *Histogram
}

// NewUpdateRecorder builds a recorder with the default bounds.
func NewUpdateRecorder() *UpdateRecorder {
	lat, probe := LatencyBounds(), ProbeBounds()
	return &UpdateRecorder{
		InsertLatency: NewHistogram(lat),
		DeleteLatency: NewHistogram(lat),
		FindLatency:   NewHistogram(lat),
		InsertProbe:   NewHistogram(probe),
		DeleteProbe:   NewHistogram(probe),
		FindProbe:     NewHistogram(probe),
	}
}

// RecordInsert logs one insert (or duplicate-update) operation.
func (r *UpdateRecorder) RecordInsert(d time.Duration, cellsInspected int) {
	if r == nil {
		return
	}
	r.InsertLatency.ObserveDuration(d)
	r.InsertProbe.Observe(uint64(cellsInspected))
}

// RecordDelete logs one delete operation.
func (r *UpdateRecorder) RecordDelete(d time.Duration, cellsInspected int) {
	if r == nil {
		return
	}
	r.DeleteLatency.ObserveDuration(d)
	r.DeleteProbe.Observe(uint64(cellsInspected))
}

// RecordFind logs one find operation.
func (r *UpdateRecorder) RecordFind(d time.Duration, cellsInspected int) {
	if r == nil {
		return
	}
	r.FindLatency.ObserveDuration(d)
	r.FindProbe.Observe(uint64(cellsInspected))
}

// RecorderSnapshot is the JSON form of an UpdateRecorder. Latencies are in
// nanoseconds; probes in cells inspected per operation.
type RecorderSnapshot struct {
	InsertLatencyNs HistogramSnapshot `json:"insert_latency_ns"`
	DeleteLatencyNs HistogramSnapshot `json:"delete_latency_ns"`
	FindLatencyNs   HistogramSnapshot `json:"find_latency_ns"`
	InsertProbe     HistogramSnapshot `json:"insert_probe_cells"`
	DeleteProbe     HistogramSnapshot `json:"delete_probe_cells"`
	FindProbe       HistogramSnapshot `json:"find_probe_cells"`
}

// Snapshot copies the recorder's state; a nil recorder yields a zero
// snapshot.
func (r *UpdateRecorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{}
	}
	return RecorderSnapshot{
		InsertLatencyNs: r.InsertLatency.Snapshot(),
		DeleteLatencyNs: r.DeleteLatency.Snapshot(),
		FindLatencyNs:   r.FindLatency.Snapshot(),
		InsertProbe:     r.InsertProbe.Snapshot(),
		DeleteProbe:     r.DeleteProbe.Snapshot(),
		FindProbe:       r.FindProbe.Snapshot(),
	}
}
