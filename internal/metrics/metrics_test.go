package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Load() != 10 {
		t.Fatalf("counter = %d, want 10", c.Load())
	}
	var g Gauge
	g.Set(5)
	g.Add(-8)
	if g.Load() != -3 {
		t.Fatalf("gauge = %d, want -3", g.Load())
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]uint64{10, 100, 1000})
	for _, v := range []uint64{0, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 5121 || s.Min != 0 || s.Max != 5000 {
		t.Fatalf("snapshot totals wrong: %+v", s)
	}
	want := map[uint64]uint64{10: 2, 100: 2, math.MaxUint64: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.UpperBound] != b.Count {
			t.Fatalf("bucket %d = %d, want %d", b.UpperBound, b.Count, want[b.UpperBound])
		}
	}
	if m := s.Mean(); m != 5121.0/5 {
		t.Fatalf("mean = %g", m)
	}
	if q := s.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %d, want 100", q)
	}
	if q := s.Quantile(1); q != 5000 {
		t.Fatalf("p100 = %d, want observed max 5000", q)
	}
}

func TestEmptyHistogramSnapshot(t *testing.T) {
	s := NewHistogram(LatencyBounds()).Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
	if s.Mean() != 0 || s.Quantile(0.99) != 0 {
		t.Fatalf("empty derived stats not zero")
	}
}

func TestObserveDurationClampsNegative(t *testing.T) {
	h := NewHistogram(LatencyBounds())
	h.ObserveDuration(-time.Second)
	if s := h.Snapshot(); s.Count != 1 || s.Max != 0 {
		t.Fatalf("negative duration not clamped: %+v", s)
	}
}

func TestDefaultBoundsIncreasing(t *testing.T) {
	for _, bounds := range [][]uint64{LatencyBounds(), ProbeBounds()} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("bounds not strictly increasing at %d: %v", i, bounds)
			}
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *UpdateRecorder
	r.RecordInsert(time.Microsecond, 3)
	r.RecordDelete(time.Microsecond, 3)
	r.RecordFind(time.Microsecond, 3)
	if s := r.Snapshot(); s.InsertLatencyNs.Count != 0 {
		t.Fatalf("nil recorder snapshot not zero")
	}
}

func TestRecorderSnapshotJSON(t *testing.T) {
	r := NewUpdateRecorder()
	r.RecordInsert(250*time.Nanosecond, 4)
	r.RecordFind(90*time.Nanosecond, 2)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]HistogramSnapshot
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["insert_latency_ns"].Count != 1 || decoded["find_probe_cells"].Count != 1 {
		t.Fatalf("round-trip lost samples: %s", b)
	}
}

// TestConcurrentObserveAndSnapshot hammers every instrument from writer
// goroutines while readers snapshot — the -race contract of the package.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	r := NewUpdateRecorder()
	var c Counter
	var g Gauge
	const writers, perWriter = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.Snapshot()
					_ = c.Load()
					_ = g.Load()
				}
			}
		}()
	}
	var ww sync.WaitGroup
	for k := 0; k < writers; k++ {
		ww.Add(1)
		go func(k int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				r.RecordInsert(time.Duration(i)*time.Nanosecond, i%50)
				r.RecordDelete(time.Duration(i), i%50)
				r.RecordFind(time.Duration(i), i%50)
				c.Inc()
				g.Add(1)
			}
		}(k)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	s := r.Snapshot()
	if s.InsertLatencyNs.Count != writers*perWriter {
		t.Fatalf("lost inserts: %d", s.InsertLatencyNs.Count)
	}
	if c.Load() != writers*perWriter || g.Load() != writers*perWriter {
		t.Fatalf("lost counter/gauge updates")
	}
}
