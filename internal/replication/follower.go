package replication

// Follower side of WAL shipping. A follower owns a full durability
// directory of its own — manifest, checkpoint snapshot, segmented WAL —
// and applies the primary's stream with the same WAL-before-apply
// discipline the primary's ingest path uses: every received record is
// appended (and made durable by the follower's own sync policy) before it
// touches the store. Recovery after a follower crash is therefore exactly
// the primary's recovery path: load snapshot, replay WAL tail, reconnect
// from NextLSN. The primary resends anything past that position and the
// continuity check drops anything already logged, so a crash can neither
// lose nor double-apply an op.
//
// State machine: Idle → (Run) → Syncing (snapshot bootstrap, only when
// the follower's position was pruned on the primary) → CatchingUp →
// Live, where Live means applied ≥ the primary's durable frontier as of
// the last frame. WaitForLSN gives read-your-writes against any state.
//
// Promotion seals the stream: Promote disconnects, fsyncs the WAL,
// persists epoch+1 in the manifest (failpoint repl/promote covers a crash
// just before that write lands), and closes. The caller reopens the
// directory as a primary; the bumped epoch fences the old one off.

import (
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"graphtinker/internal/core"
	"graphtinker/internal/faultinject"
	"graphtinker/internal/wal"
)

// State is the follower's replication phase.
type State int32

const (
	// StateIdle: open but not connected to a primary.
	StateIdle State = iota
	// StateSyncing: installing a snapshot bootstrap.
	StateSyncing
	// StateCatchingUp: applying records, still behind the primary's
	// durable frontier as of the handshake.
	StateCatchingUp
	// StateLive: applied everything the primary has reported durable.
	StateLive
	// StateSealed: promoted or closed; no further stream activity.
	StateSealed
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateSyncing:
		return "syncing"
	case StateCatchingUp:
		return "catching-up"
	case StateLive:
		return "live"
	case StateSealed:
		return "sealed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ErrFollowerClosed is returned once the follower is closed or promoted.
var ErrFollowerClosed = errors.New("replication: follower closed")

// ErrWaitTimeout is returned by WaitForLSN when the deadline passes
// before the follower applies the requested position.
var ErrWaitTimeout = errors.New("replication: WaitForLSN timeout")

// ErrFollowerDegraded marks a follower whose in-memory store may be
// behind its own WAL (an apply-path failure fired mid-record). Reads
// bounded by AppliedLSN remain consistent, but the stream will not
// resume; reopen the directory to recover.
var ErrFollowerDegraded = errors.New("replication: follower degraded (apply failed mid-record); reopen the directory to recover")

// FollowerOptions configures OpenFollower.
type FollowerOptions struct {
	// Shards is the store width for a fresh directory (default 4); a
	// snapshot bootstrap adopts the primary's width instead.
	Shards int
	// SegmentBytes / SyncInterval tune the follower's own WAL exactly as
	// in DurabilityOptions.
	SegmentBytes int64
	SyncInterval time.Duration
	// Recorder, when non-nil, receives apply-side replication telemetry.
	Recorder *Recorder
	// WALRecorder, when non-nil, receives the follower WAL's telemetry.
	WALRecorder *wal.Recorder
}

// FollowerRecovery reports what opening a follower directory restored.
type FollowerRecovery struct {
	Recovered   bool   `json:"recovered"`
	SnapshotOps uint64 `json:"snapshot_ops"`
	ReplayedOps uint64 `json:"replayed_ops"`
	Epoch       uint64 `json:"epoch"`
}

// Follower replays a primary's stream into its own durable store.
// Queries (Store, AppliedLSN, WaitForLSN) are safe concurrently with Run;
// Run itself is single-flight.
type Follower struct {
	dir  string
	cfg  core.Config
	opts FollowerOptions
	rec  *Recorder
	info FollowerRecovery

	storeMu sync.RWMutex // a snapshot bootstrap swaps the store
	store   *core.Parallel
	log     *wal.Log

	// applyParts is the per-record partition scratch; only the stream's
	// single-flight apply path (applyRecord via runStream) touches it.
	applyParts [][]core.EdgeOp

	applied    atomic.Uint64 // LSN after the last op applied to the store
	primaryLSN atomic.Uint64 // primary's durable frontier as of the last frame
	state      atomic.Int32

	mu       sync.Mutex
	epoch    uint64
	notify   chan struct{} // closed+replaced when applied advances or the follower seals
	conn     *frameConn    // live connection, nil when idle
	running  bool
	sealed   bool
	closed   bool
	degraded bool
	runWG    sync.WaitGroup
}

// OpenFollower opens (or creates) a follower durability directory,
// recovering prior state exactly like OpenDurableStream: validated
// snapshot, then idempotent WAL-tail replay. The follower serves reads
// immediately; call Run (or Dial via the facade) to attach a primary.
func OpenFollower(cfg core.Config, dir string, opts FollowerOptions) (*Follower, error) {
	if opts.Shards <= 0 {
		opts.Shards = 4
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("replication: follower: %w", err)
	}
	// A process killed mid-bootstrap leaves a .bootstrap-* temp behind;
	// it is never referenced by a manifest, so sweep it here.
	if stale, err := filepath.Glob(filepath.Join(dir, ".bootstrap-*")); err == nil {
		for _, s := range stale {
			os.Remove(s)
		}
	}
	m, haveManifest, err := wal.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	var store *core.Parallel
	var info FollowerRecovery
	if haveManifest && m.Snapshot != "" {
		f, err := wal.OpenManifestSnapshot(dir, m)
		if err != nil {
			return nil, err
		}
		store, err = core.ReadParallelSnapshot(f, nil)
		_ = f.Close() // read-only; the snapshot decode error is the signal
		if err != nil {
			return nil, fmt.Errorf("replication: follower: %w", err)
		}
		info = FollowerRecovery{Recovered: true, SnapshotOps: m.LastLSN}
	} else {
		store, err = core.NewParallel(cfg, opts.Shards)
		if err != nil {
			return nil, err
		}
	}
	info.Epoch = m.Epoch

	wdir := filepath.Join(dir, "wal")
	log, err := wal.Open(wdir, wal.Options{
		SegmentBytes: opts.SegmentBytes,
		SyncInterval: opts.SyncInterval,
		Recorder:     opts.WALRecorder,
		InitialLSN:   m.LastLSN,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	if log.NextLSN() < m.LastLSN {
		// A crash between a bootstrap's manifest install and its WAL wipe
		// leaves the pre-bootstrap log behind. Every op in it is below the
		// snapshot's LSN — wholly covered — so discarding it is safe, and
		// required: replay must start at the snapshot's position.
		if err := log.Close(); err != nil {
			store.Close()
			return nil, err
		}
		if err := os.RemoveAll(wdir); err != nil {
			store.Close()
			return nil, fmt.Errorf("replication: follower: reset stale wal: %w", err)
		}
		log, err = wal.Open(wdir, wal.Options{
			SegmentBytes: opts.SegmentBytes,
			SyncInterval: opts.SyncInterval,
			Recorder:     opts.WALRecorder,
			InitialLSN:   m.LastLSN,
		})
		if err != nil {
			store.Close()
			return nil, err
		}
	}
	replayed, err := replayTail(wdir, m.LastLSN, opts.WALRecorder, store)
	if err != nil {
		_ = log.Close() // abandoning open; the replay error is the signal
		store.Close()
		return nil, err
	}
	info.ReplayedOps = replayed
	if replayed > 0 {
		info.Recovered = true
	}

	f := &Follower{
		dir:    dir,
		cfg:    cfg,
		opts:   opts,
		rec:    opts.Recorder,
		info:   info,
		store:  store,
		log:    log,
		epoch:  m.Epoch,
		notify: make(chan struct{}),
	}
	f.applied.Store(log.NextLSN())
	f.state.Store(int32(StateIdle))
	return f, nil
}

// replayTail applies the WAL tail from fromLSN onward to a sharded store
// through the pipelined replay path (decode overlapped with per-shard
// application, partition scratch reused across the tail).
func replayTail(dir string, fromLSN uint64, rec *wal.Recorder, store *core.Parallel) (uint64, error) {
	next, err := wal.ReplayInto(dir, fromLSN, rec, store)
	if err != nil {
		return 0, err
	}
	if next < fromLSN {
		return 0, nil
	}
	return next - fromLSN, nil
}

// applyToStore partitions one record's ops by shard and applies each part.
// The partition scratch lives on the Follower and is reused across records
// (applyRecord is single-flight from runStream); a snapshot bootstrap can
// swap the store for one with a different width, so the scratch is re-made
// whenever the shard count changes.
func (f *Follower) applyToStore(store *core.Parallel, ops []core.EdgeOp) {
	n := store.NumShards()
	if len(f.applyParts) != n {
		f.applyParts = make([][]core.EdgeOp, n)
	}
	parts := f.applyParts
	for i := range parts {
		parts[i] = parts[i][:0]
	}
	for _, op := range ops {
		s := store.ShardOf(op.Src)
		parts[s] = append(parts[s], op)
	}
	for s, part := range parts {
		if len(part) > 0 {
			store.ApplyShard(s, part)
		}
	}
}

// Recovery reports what opening the directory restored.
func (f *Follower) Recovery() FollowerRecovery { return f.info }

// Store exposes the replica for queries. Do not mutate it — the stream
// owns writes. The pointer is stable except across a snapshot bootstrap;
// prefer calling Store per read batch rather than caching it.
func (f *Follower) Store() *core.Parallel {
	f.storeMu.RLock()
	defer f.storeMu.RUnlock()
	return f.store
}

// AppliedLSN is the replica's position: every op below it is applied.
func (f *Follower) AppliedLSN() uint64 { return f.applied.Load() }

// Epoch returns the follower's replication term.
func (f *Follower) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// State reports the replication phase.
func (f *Follower) State() State { return State(f.state.Load()) }

// Lag reports the follower's apply lag in ops against the primary's
// durable frontier as of the last received frame (0 when idle or ahead).
func (f *Follower) Lag() uint64 {
	p, a := f.primaryLSN.Load(), f.applied.Load()
	if p <= a {
		return 0
	}
	return p - a
}

// WaitForLSN blocks until the replica has applied every op below lsn —
// the read-your-writes barrier: a client that observed the primary ack
// LSN n calls WaitForLSN(n) and then reads its own writes from the
// replica. A non-positive timeout waits forever.
func (f *Follower) WaitForLSN(lsn uint64, timeout time.Duration) error {
	if f.applied.Load() >= lsn {
		return nil
	}
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for {
		f.mu.Lock()
		if f.applied.Load() >= lsn {
			f.mu.Unlock()
			return nil
		}
		if f.closed || f.sealed {
			f.mu.Unlock()
			return ErrFollowerClosed
		}
		if f.degraded {
			f.mu.Unlock()
			return ErrFollowerDegraded
		}
		ch := f.notify
		f.mu.Unlock()
		select {
		case <-ch:
		case <-deadline:
			return ErrWaitTimeout
		}
	}
}

// Dial connects to a primary at addr and runs the stream until it ends.
func (f *Follower) Dial(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("replication: follower: %w", err)
	}
	return f.Run(conn)
}

// Run attaches conn as the primary stream and blocks until it ends: the
// connection drops, the primary refuses us, Promote/Close seals the
// follower (returns nil), or an error. It owns conn and closes it on
// return. Single-flight: a second concurrent Run is refused.
func (f *Follower) Run(conn net.Conn) (err error) {
	fc := newFrameConn(conn, f.rec)
	f.mu.Lock()
	if f.closed || f.sealed {
		f.mu.Unlock()
		_ = fc.Close() // refusing the conn; ErrFollowerClosed is the signal
		return ErrFollowerClosed
	}
	if f.degraded {
		f.mu.Unlock()
		_ = fc.Close()
		return ErrFollowerDegraded
	}
	if f.running {
		f.mu.Unlock()
		_ = fc.Close()
		return errors.New("replication: follower: Run already active")
	}
	f.running = true
	f.conn = fc
	f.runWG.Add(1)
	f.mu.Unlock()

	// Deferred so a panic (a chaos failpoint simulating a hard kill)
	// still releases the run slot — Crash/Close must not deadlock on a
	// stream that died mid-frame.
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.running = false
		sealed := f.sealed || f.closed
		f.mu.Unlock()
		_ = fc.Close() // stream already ended; the loop error is the signal
		f.runWG.Done()
		if sealed {
			err = nil // Promote/Close cut the connection on purpose
		} else if f.State() != StateSealed {
			f.state.Store(int32(StateIdle))
		}
	}()
	return f.runStream(fc)
}

func (f *Follower) runStream(fc *frameConn) error {
	if err := fc.send(frameHello, encodeHello(helloMsg{
		version: protocolVersion,
		epoch:   f.Epoch(),
		haveLSN: f.log.NextLSN(),
	})); err != nil {
		return err
	}
	started := false
	for {
		ft, payload, err := fc.recv()
		if err != nil {
			return err
		}
		switch ft {
		case frameSnapHeader:
			if started {
				return fmt.Errorf("%w: snapshot header after start", ErrBadFrame)
			}
			hdr, err := decodeSnapHeader(payload)
			if err != nil {
				return err
			}
			if err := f.checkEpoch(fc, hdr.epoch); err != nil {
				return err
			}
			f.state.Store(int32(StateSyncing))
			if err := f.installSnapshot(fc, hdr); err != nil {
				f.markDegraded()
				return err
			}
		case frameStart:
			start, err := decodeStart(payload)
			if err != nil {
				return err
			}
			if err := f.checkEpoch(fc, start.epoch); err != nil {
				return err
			}
			if have := f.log.NextLSN(); start.fromLSN != have {
				return fmt.Errorf("replication: follower at LSN %d but stream starts at %d", have, start.fromLSN)
			}
			f.observePrimary(start.durable)
			started = true
		case frameRecords:
			if !started {
				return fmt.Errorf("%w: records before start", ErrBadFrame)
			}
			if len(payload) < 8 {
				return fmt.Errorf("%w: records frame is %d bytes, want >=8", ErrBadFrame, len(payload))
			}
			durable := leUint64(payload)
			firstLSN, ops, err := wal.DecodeOps(payload[8:])
			if err != nil {
				return fmt.Errorf("%w: %v", ErrBadFrame, err)
			}
			if err := f.applyRecord(firstLSN, ops); err != nil {
				return err
			}
			f.observePrimary(durable)
		case frameHeartbeat:
			if len(payload) != 8 {
				return fmt.Errorf("%w: heartbeat is %d bytes, want 8", ErrBadFrame, len(payload))
			}
			f.observePrimary(leUint64(payload))
		case frameError:
			return peerError(payload)
		default:
			return fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, ft)
		}
	}
}

// checkEpoch enforces the fence on a stream-opening frame: an older
// primary is refused (it was deposed); a newer epoch is adopted and
// persisted before any of its records land.
func (f *Follower) checkEpoch(fc *frameConn, peer uint64) error {
	f.mu.Lock()
	mine := f.epoch
	f.mu.Unlock()
	if peer < mine {
		if f.rec != nil {
			f.rec.StaleEpochRejects.Inc()
		}
		_ = fc.send(frameError, encodeErrorFrame(errCodeStaleEpoch,
			fmt.Sprintf("follower epoch %d > primary epoch %d", mine, peer)))
		return fmt.Errorf("%w: primary at epoch %d, follower at %d", ErrStaleEpoch, peer, mine)
	}
	if peer > mine {
		if err := f.persistEpoch(peer); err != nil {
			return err
		}
	}
	return nil
}

// persistEpoch durably adopts a newer term before applying anything from
// it, so a crashed-and-recovered follower still refuses the old primary.
func (f *Follower) persistEpoch(epoch uint64) error {
	m, ok, err := wal.LoadManifest(f.dir)
	if err != nil {
		return err
	}
	if !ok {
		m = wal.Manifest{Shards: f.Store().NumShards()}
	}
	m.Epoch = epoch
	if err := wal.WriteManifest(f.dir, m); err != nil {
		return err
	}
	f.mu.Lock()
	f.epoch = epoch
	f.mu.Unlock()
	return nil
}

// applyRecord runs the WAL-before-apply discipline on one shipped record.
// Re-delivery after a reconnect is dropped by the continuity check; a gap
// means the stream is broken (never skip — that silently loses ops).
func (f *Follower) applyRecord(firstLSN uint64, ops []core.EdgeOp) error {
	next := f.log.NextLSN()
	end := firstLSN + uint64(len(ops))
	if end <= next {
		if f.rec != nil {
			f.rec.DuplicateRecords.Inc()
		}
		return nil
	}
	if firstLSN > next {
		return fmt.Errorf("replication: follower at LSN %d but record starts at %d (gap)", next, firstLSN)
	}
	if firstLSN < next {
		ops = ops[next-firstLSN:] // partial re-delivery: apply only the unseen tail
	}
	if _, err := f.log.Append(ops); err != nil {
		f.markDegraded()
		return err
	}
	// The failpoint sits in the dangerous window: ops logged, store not
	// yet updated. A kill here must recover to the exact same state via
	// snapshot + replay — the idempotence the chaos suite pins.
	if err := faultinject.Inject("repl/apply"); err != nil {
		f.markDegraded()
		return fmt.Errorf("replication: follower apply: %w", err)
	}
	f.applyToStore(f.Store(), ops)
	if f.rec != nil {
		f.rec.RecordsApplied.Inc()
		f.rec.OpsApplied.Add(uint64(len(ops)))
	}
	f.advanceApplied(end)
	return nil
}

// installSnapshot runs the bootstrap: stream chunks to a temp file,
// validate, durably install snapshot + manifest, reset the WAL at the
// snapshot's LSN, and swap the in-memory store. Install order is
// snapshot → manifest → WAL reset; OpenFollower's stale-WAL branch covers
// a crash between the last two.
func (f *Follower) installSnapshot(fc *frameConn, hdr snapHeaderMsg) error {
	tmp, err := os.CreateTemp(f.dir, ".bootstrap-*")
	if err != nil {
		return fmt.Errorf("replication: follower: bootstrap: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(e error) error {
		_ = tmp.Close() // already failing with e; close error is cleanup noise
		os.Remove(tmpName)
		return e
	}
	h := crc32.New(castagnoli)
	var got int64
	for {
		ft, payload, err := fc.recv()
		if err != nil {
			return cleanup(err)
		}
		if ft == frameSnapDone {
			break
		}
		if ft == frameError {
			return cleanup(peerError(payload))
		}
		if ft != frameSnapChunk {
			return cleanup(fmt.Errorf("%w: frame type %d inside snapshot bootstrap", ErrBadFrame, ft))
		}
		if _, err := tmp.Write(payload); err != nil {
			return cleanup(fmt.Errorf("replication: follower: bootstrap: %w", err))
		}
		mustWrite(h, payload)
		got += int64(len(payload))
	}
	if got != hdr.size || h.Sum32() != hdr.crc {
		return cleanup(fmt.Errorf("replication: follower: bootstrap snapshot fails validation: got %d bytes crc %08x, header says %d bytes crc %08x",
			got, h.Sum32(), hdr.size, hdr.crc))
	}
	// The failpoint covers the install sequence: a kill anywhere below
	// must leave the directory recoverable to either the old or the new
	// state, never a torn mix.
	if err := faultinject.Inject("repl/snapshot"); err != nil {
		return cleanup(fmt.Errorf("replication: follower: bootstrap: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("replication: follower: bootstrap: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("replication: follower: bootstrap: %w", err)
	}
	name := fmt.Sprintf("snap-%016x.gts", hdr.lastLSN)
	if err := os.Rename(tmpName, filepath.Join(f.dir, name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("replication: follower: bootstrap: %w", err)
	}
	if err := wal.WriteManifest(f.dir, wal.Manifest{
		Snapshot:      name,
		LastLSN:       hdr.lastLSN,
		SnapshotCRC:   hdr.crc,
		SnapshotBytes: hdr.size,
		Shards:        int(hdr.shards),
		Epoch:         f.Epoch(),
	}); err != nil {
		return err
	}

	// Reset the WAL at the snapshot's LSN: everything in the old log is
	// below it, hence covered.
	wdir := filepath.Join(f.dir, "wal")
	if err := f.log.Close(); err != nil {
		return err
	}
	if err := os.RemoveAll(wdir); err != nil {
		return fmt.Errorf("replication: follower: bootstrap: reset wal: %w", err)
	}
	nlog, err := wal.Open(wdir, wal.Options{
		SegmentBytes: f.opts.SegmentBytes,
		SyncInterval: f.opts.SyncInterval,
		Recorder:     f.opts.WALRecorder,
		InitialLSN:   hdr.lastLSN,
	})
	if err != nil {
		return err
	}
	f.log = nlog

	// Swap the in-memory store for the bootstrapped one.
	sf, err := os.Open(filepath.Join(f.dir, name))
	if err != nil {
		return fmt.Errorf("replication: follower: bootstrap: %w", err)
	}
	nstore, err := core.ReadParallelSnapshot(sf, nil)
	_ = sf.Close() // read-only; the decode error is the signal
	if err != nil {
		return fmt.Errorf("replication: follower: bootstrap: %w", err)
	}
	f.storeMu.Lock()
	old := f.store
	f.store = nstore
	f.storeMu.Unlock()
	old.Close()

	if f.rec != nil {
		f.rec.SnapshotsInstalled.Inc()
	}
	f.advanceApplied(hdr.lastLSN)
	return nil
}

// observePrimary folds a reported durable frontier into the lag gauge and
// the catching-up → live transition.
func (f *Follower) observePrimary(durable uint64) {
	for {
		cur := f.primaryLSN.Load()
		if durable <= cur || f.primaryLSN.CompareAndSwap(cur, durable) {
			break
		}
	}
	f.updatePhase()
}

func (f *Follower) advanceApplied(lsn uint64) {
	f.applied.Store(lsn)
	f.mu.Lock()
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()
	f.updatePhase()
}

func (f *Follower) updatePhase() {
	p, a := f.primaryLSN.Load(), f.applied.Load()
	if f.rec != nil {
		lag := int64(0)
		if p > a {
			lag = int64(p - a)
		}
		f.rec.LagOps.Set(lag)
	}
	switch State(f.state.Load()) {
	case StateCatchingUp, StateSyncing, StateIdle:
		if a >= p {
			f.state.Store(int32(StateLive))
		} else {
			f.state.Store(int32(StateCatchingUp))
		}
	case StateLive:
		if a < p {
			f.state.Store(int32(StateCatchingUp))
		}
	}
}

func (f *Follower) markDegraded() {
	f.mu.Lock()
	f.degraded = true
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()
}

// Promote seals the follower and turns its directory into a primary's:
// disconnect, fsync the WAL, persist epoch+1 in the manifest, close. It
// returns the new epoch; the caller reopens the directory (now fenced
// against the old primary) to serve writes. The promoted state is exactly
// the replica's applied prefix — ops the old primary acked but never
// shipped are lost, which is the unavoidable cost of asynchronous
// replication, and why Promote pairs with WaitForLSN in any client that
// needs stronger guarantees.
// A failed Promote (e.g. the persist step erroring) leaves the follower
// sealed but open: the stream will not resume, but Promote may be
// retried, and Close still works.
func (f *Follower) Promote() (uint64, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return 0, ErrFollowerClosed
	}
	f.sealed = true
	conn := f.conn
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()

	if conn != nil {
		_ = conn.Close() // unparks the Run loop; Run's exit is awaited below
	}
	f.runWG.Wait()
	f.state.Store(int32(StateSealed))

	if err := f.log.Sync(); err != nil {
		return 0, err
	}
	// A kill here — after the seal, before the manifest lands — must
	// recover as a follower at the old epoch with the same applied prefix.
	if err := faultinject.Inject("repl/promote"); err != nil {
		return 0, fmt.Errorf("replication: promote: %w", err)
	}
	m, ok, err := wal.LoadManifest(f.dir)
	if err != nil {
		return 0, err
	}
	if !ok {
		m = wal.Manifest{Shards: f.Store().NumShards()}
	}
	newEpoch := f.Epoch() + 1
	m.Epoch = newEpoch
	if err := wal.WriteManifest(f.dir, m); err != nil {
		return 0, err
	}

	f.mu.Lock()
	f.epoch = newEpoch
	f.closed = true
	f.mu.Unlock()
	err = f.log.Close()
	f.Store().Close()
	return newEpoch, err
}

// Close disconnects, fsyncs and closes the WAL, and releases the store.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.sealed = true
	conn := f.conn
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()
	if conn != nil {
		_ = conn.Close() // unparks Run; awaited below
	}
	f.runWG.Wait()
	f.state.Store(int32(StateSealed))
	err := f.log.Close()
	f.Store().Close()
	return err
}

// Crash abandons the follower the way a killed process would: connection
// cut, WAL buffers dropped unsynced. Built for the chaos suite.
func (f *Follower) Crash() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.sealed = true
	conn := f.conn
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()
	if conn != nil {
		_ = conn.Close() // simulating a dead process; nothing to report
	}
	f.runWG.Wait()
	f.state.Store(int32(StateSealed))
	f.log.Crash()
	f.Store().Close()
}

func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// mustWrite feeds a hash; hash.Hash writes never fail.
func mustWrite(h hash.Hash, p []byte) { _, _ = h.Write(p) }
