package replication

import "graphtinker/internal/metrics"

// Recorder bundles the replication observability instruments on the
// race-clean internal/metrics layer. One recorder can serve both roles:
// the ship-side counters move on a primary, the apply-side counters on a
// follower. A nil *Recorder is a valid no-op sink.
type Recorder struct {
	// FramesSent / FramesRecv / BytesShipped count transport traffic
	// (payload bytes, headers excluded).
	FramesSent   metrics.Counter
	FramesRecv   metrics.Counter
	BytesShipped metrics.Counter
	// RecordsShipped / OpsShipped count WAL records a primary streamed.
	RecordsShipped metrics.Counter
	OpsShipped     metrics.Counter
	// SnapshotsSent / SnapshotsInstalled count snapshot bootstraps on each
	// side.
	SnapshotsSent      metrics.Counter
	SnapshotsInstalled metrics.Counter
	// RecordsApplied / OpsApplied count records a follower logged and
	// applied; DuplicateRecords counts re-delivered records skipped by the
	// continuity check (a crashed-and-reconnected primary resends from the
	// follower's acked position, so a few are normal after recovery).
	RecordsApplied   metrics.Counter
	OpsApplied       metrics.Counter
	DuplicateRecords metrics.Counter
	// StaleEpochRejects counts connections refused by the epoch fence —
	// a deposed primary knocking is worth an operator's attention.
	StaleEpochRejects metrics.Counter
	// LagOps gauges the follower's apply lag in ops: the primary's durable
	// frontier minus the follower's applied LSN, as of the last frame.
	LagOps metrics.Gauge
}

// NewRecorder builds an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// RecorderSnapshot is the JSON form of a Recorder — the "replication"
// section of cmd/gtload's -metrics-out document.
type RecorderSnapshot struct {
	FramesSent         uint64 `json:"frames_sent"`
	FramesRecv         uint64 `json:"frames_recv"`
	BytesShipped       uint64 `json:"bytes_shipped"`
	RecordsShipped     uint64 `json:"records_shipped"`
	OpsShipped         uint64 `json:"ops_shipped"`
	SnapshotsSent      uint64 `json:"snapshots_sent"`
	SnapshotsInstalled uint64 `json:"snapshots_installed"`
	RecordsApplied     uint64 `json:"records_applied"`
	OpsApplied         uint64 `json:"ops_applied"`
	DuplicateRecords   uint64 `json:"duplicate_records"`
	StaleEpochRejects  uint64 `json:"stale_epoch_rejects"`
	LagOps             int64  `json:"lag_ops"`
}

// Snapshot copies the recorder's state; a nil recorder yields a zero
// snapshot.
func (r *Recorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{}
	}
	return RecorderSnapshot{
		FramesSent:         r.FramesSent.Load(),
		FramesRecv:         r.FramesRecv.Load(),
		BytesShipped:       r.BytesShipped.Load(),
		RecordsShipped:     r.RecordsShipped.Load(),
		OpsShipped:         r.OpsShipped.Load(),
		SnapshotsSent:      r.SnapshotsSent.Load(),
		SnapshotsInstalled: r.SnapshotsInstalled.Load(),
		RecordsApplied:     r.RecordsApplied.Load(),
		OpsApplied:         r.OpsApplied.Load(),
		DuplicateRecords:   r.DuplicateRecords.Load(),
		StaleEpochRejects:  r.StaleEpochRejects.Load(),
		LagOps:             r.LagOps.Load(),
	}
}
