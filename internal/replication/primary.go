package replication

// Primary side of WAL shipping. A primary owns nothing new: it serves the
// durability directory an ingest path is already writing — each follower
// connection gets a wal.Tailer over the live log, preceded by a snapshot
// bootstrap when the follower's position has been pruned away. The tailer
// never reads past the log's durable frontier, so a follower can only
// learn state the primary itself would recover after a crash.
//
// Epoch fencing: the primary carries the manifest's epoch. A follower
// hello with a HIGHER epoch means this primary was deposed by a promotion
// it hasn't heard about — it must refuse the connection (and its operator
// should retire it), never ship records that rewrite the new timeline.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"graphtinker/internal/wal"
)

// ErrPrimaryClosed is returned by Serve/HandleConn after Close.
var ErrPrimaryClosed = errors.New("replication: primary closed")

// DefaultSnapshotChunkBytes sizes snapshot bootstrap chunks.
const DefaultSnapshotChunkBytes = 256 << 10

// PrimaryOptions configures NewPrimary.
type PrimaryOptions struct {
	// Epoch is the primary's replication term, from the manifest that
	// recovered it (0 for a fresh directory).
	Epoch uint64
	// SnapshotChunkBytes sizes bootstrap chunks (default 256 KiB).
	SnapshotChunkBytes int
	// HeartbeatInterval, when > 0, sends the durable frontier to idle
	// followers at this period so their lag gauges stay current.
	HeartbeatInterval time.Duration
	// Recorder, when non-nil, receives ship-side telemetry.
	Recorder *Recorder
}

// Primary ships a durability directory's checkpoint + live WAL tail to
// followers. Safe for concurrent use; each connection is served on its
// own goroutine (Serve) or the caller's (HandleConn).
type Primary struct {
	dir  string
	log  *wal.Log
	opts PrimaryOptions

	mu     sync.Mutex
	lns    []net.Listener
	closed chan struct{}
	down   bool
	wg     sync.WaitGroup
}

// NewPrimary wraps an open WAL (and the durability directory holding its
// checkpoints) as a replication source. The caller keeps ownership of the
// log; Close stops serving but does not close it.
func NewPrimary(dir string, log *wal.Log, opts PrimaryOptions) *Primary {
	if opts.SnapshotChunkBytes <= 0 {
		opts.SnapshotChunkBytes = DefaultSnapshotChunkBytes
	}
	return &Primary{dir: dir, log: log, opts: opts, closed: make(chan struct{})}
}

// Epoch returns the primary's replication term.
func (p *Primary) Epoch() uint64 { return p.opts.Epoch }

// Serve accepts follower connections on ln until Close (which also closes
// ln). It returns immediately; each accepted connection is handled on its
// own goroutine.
func (p *Primary) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		return ErrPrimaryClosed
	}
	p.lns = append(p.lns, ln)
	p.wg.Add(1)
	p.mu.Unlock()
	go func() {
		defer p.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed (by Close or externally)
			}
			p.wg.Add(1)
			go func() {
				defer p.wg.Done()
				_ = p.HandleConn(conn) // per-connection errors end that stream only
			}()
		}
	}()
	return nil
}

// HandleConn serves one follower on conn, blocking until the stream ends:
// the follower disconnects, the primary closes, or an error. It owns conn
// and closes it on return.
func (p *Primary) HandleConn(conn net.Conn) error {
	fc := newFrameConn(conn, p.opts.Recorder)
	defer func() { _ = fc.Close() }() // stream outcome is the signal; double-close is benign
	err := p.serveStream(fc)
	if err != nil && !errors.Is(err, ErrPrimaryClosed) {
		// Best-effort: tell the follower why before hanging up.
		_ = fc.send(frameError, encodeErrorFrame(errCodeGeneric, err.Error()))
	}
	return err
}

func (p *Primary) serveStream(fc *frameConn) error {
	ft, payload, err := fc.recv()
	if err != nil {
		return fmt.Errorf("replication: primary: hello: %w", err)
	}
	if ft != frameHello {
		return fmt.Errorf("%w: expected hello, got frame type %d", ErrBadFrame, ft)
	}
	hello, err := decodeHello(payload)
	if err != nil {
		return err
	}
	if hello.version != protocolVersion {
		return fmt.Errorf("replication: primary speaks protocol %d, follower %d", protocolVersion, hello.version)
	}
	if hello.epoch > p.opts.Epoch {
		// The follower has seen a newer term: this primary was deposed.
		if p.opts.Recorder != nil {
			p.opts.Recorder.StaleEpochRejects.Inc()
		}
		_ = fc.send(frameError, encodeErrorFrame(errCodeStaleEpoch,
			fmt.Sprintf("primary epoch %d < follower epoch %d", p.opts.Epoch, hello.epoch)))
		return fmt.Errorf("%w: follower at epoch %d, primary at %d", ErrStaleEpoch, hello.epoch, p.opts.Epoch)
	}

	tl, err := p.attachTailer(fc, hello.haveLSN)
	if err != nil {
		return err
	}
	defer func() { _ = tl.Close() }() // releases the retention pin; no durable state behind it

	if err := fc.send(frameStart, encodeStart(startMsg{
		epoch:   p.opts.Epoch,
		fromLSN: tl.Position(),
		durable: p.log.DurableLSN(),
	})); err != nil {
		return err
	}

	stopHB := p.startHeartbeats(fc)
	defer stopHB()

	recBuf := make([]byte, 8)
	for {
		lsn, ops, err := tl.Next(p.closed)
		if err != nil {
			if errors.Is(err, wal.ErrTailerStopped) || errors.Is(err, wal.ErrClosed) {
				return ErrPrimaryClosed
			}
			return err
		}
		recBuf = appendUint64(recBuf[:0], p.log.DurableLSN())
		recBuf = append(recBuf, wal.EncodeOps(lsn, ops)...)
		if err := fc.send(frameRecords, recBuf); err != nil {
			return err
		}
		if p.opts.Recorder != nil {
			p.opts.Recorder.RecordsShipped.Inc()
			p.opts.Recorder.OpsShipped.Add(uint64(len(ops)))
		}
	}
}

// attachTailer positions a tailer at the follower's LSN, falling back to a
// snapshot bootstrap when that position has been pruned. The checkpoint
// race (a concurrent Checkpoint pruning between manifest load and tailer
// registration, or removing the stale snapshot mid-open) is handled by
// retrying with a fresh manifest — the tailer is registered at the
// manifest's LSN before the snapshot ships, so once registration succeeds
// the tail can no longer vanish.
func (p *Primary) attachTailer(fc *frameConn, haveLSN uint64) (*wal.Tailer, error) {
	const maxAttempts = 5
	for attempt := 0; ; attempt++ {
		tl, err := p.log.NewTailer(haveLSN)
		if err == nil {
			return tl, nil
		}
		if !errors.Is(err, wal.ErrTailPruned) || attempt >= maxAttempts {
			return nil, err
		}
		m, ok, lerr := wal.LoadManifest(p.dir)
		if lerr != nil {
			return nil, lerr
		}
		if !ok || m.Snapshot == "" {
			return nil, fmt.Errorf("replication: primary: LSN %d pruned but no checkpoint to bootstrap from", haveLSN)
		}
		if m.LastLSN <= haveLSN {
			continue // stale manifest read; the prune that beat us implies a newer checkpoint
		}
		f, err := wal.OpenManifestSnapshot(p.dir, m)
		if err != nil {
			continue // checkpoint raced us and GC'd this snapshot; reload
		}
		tl, err = p.log.NewTailer(m.LastLSN)
		if err != nil {
			_ = f.Close() // abandoning bootstrap; the tailer error drives the retry
			if errors.Is(err, wal.ErrTailPruned) {
				continue
			}
			return nil, err
		}
		err = p.sendSnapshot(fc, f, m)
		_ = f.Close() // read-only handle; the ship error below is the signal
		if err != nil {
			_ = tl.Close()
			return nil, err
		}
		if p.opts.Recorder != nil {
			p.opts.Recorder.SnapshotsSent.Inc()
		}
		return tl, nil
	}
}

func (p *Primary) sendSnapshot(fc *frameConn, f *os.File, m wal.Manifest) error {
	if err := fc.send(frameSnapHeader, encodeSnapHeader(snapHeaderMsg{
		epoch:   p.opts.Epoch,
		lastLSN: m.LastLSN,
		shards:  uint32(m.Shards),
		size:    m.SnapshotBytes,
		crc:     m.SnapshotCRC,
	})); err != nil {
		return err
	}
	buf := make([]byte, p.opts.SnapshotChunkBytes)
	for {
		n, err := f.Read(buf)
		if n > 0 {
			if serr := fc.sendBuffered(frameSnapChunk, buf[:n]); serr != nil {
				return serr
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return fmt.Errorf("replication: primary: read snapshot: %w", err)
		}
	}
	return fc.send(frameSnapDone, nil)
}

// startHeartbeats runs the idle-follower heartbeat ticker when configured;
// the returned func stops it.
func (p *Primary) startHeartbeats(fc *frameConn) func() {
	if p.opts.HeartbeatInterval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(p.opts.HeartbeatInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				hb := appendUint64(nil, p.log.DurableLSN())
				if err := fc.send(frameHeartbeat, hb); err != nil {
					return // the record stream will surface the connection error
				}
			case <-done:
				return
			case <-p.closed:
				return
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// Close stops serving: listeners close, per-connection streams unwind
// (their tailers unblock), and Close returns once every handler exits.
// The WAL itself stays open — the caller owns it.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.down {
		p.mu.Unlock()
		return nil
	}
	p.down = true
	lns := p.lns
	close(p.closed)
	p.mu.Unlock()
	for _, ln := range lns {
		_ = ln.Close() // shutting down; accept-loop exit is the outcome that matters
	}
	p.wg.Wait()
	return nil
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
