package replication

// Package-level replication tests over in-process pipes: live tailing,
// snapshot bootstrap, reconnect resume, epoch fencing, WaitForLSN
// semantics, and transport framing. The facade-level chaos suite
// (replication_chaos_test.go at the module root) covers kill-and-recover;
// these pin the protocol mechanics.

import (
	"errors"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphtinker/internal/core"
	"graphtinker/internal/testutil"
	"graphtinker/internal/wal"
)

// genStream builds a deterministic mixed insert/delete op stream.
func genStream(n int, seed uint64) []core.EdgeOp {
	r := testutil.Rand{S: seed}
	ops := make([]core.EdgeOp, 0, n)
	for i := 0; i < n; i++ {
		src, dst := r.Next()%400, r.Next()%400
		if r.Intn(5) == 0 {
			ops = append(ops, core.DeleteOp(src, dst))
		} else {
			ops = append(ops, core.InsertOp(src, dst, r.Float32()))
		}
	}
	return ops
}

// oracleOver replays ops on the reference oracle.
func oracleOver(ops []core.EdgeOp) *testutil.RefGraph {
	ref := testutil.NewRefGraph()
	for _, op := range ops {
		if op.Del {
			ref.Delete(op.Src, op.Dst)
		} else {
			ref.Insert(op.Src, op.Dst, op.Weight)
		}
	}
	return ref
}

// primaryHarness is a minimal primary-side durability directory: a live
// WAL plus checkpoint machinery, without the full ingest pipeline.
type primaryHarness struct {
	t     *testing.T
	dir   string
	log   *wal.Log
	store *core.Parallel // mirror of everything appended, for checkpoints
	p     *Primary
}

func newPrimaryHarness(t *testing.T, epoch uint64, rec *Recorder) *primaryHarness {
	t.Helper()
	dir := t.TempDir()
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{SyncInterval: 0, SegmentBytes: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	store, err := core.NewParallel(core.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	h := &primaryHarness{t: t, dir: dir, log: log, store: store}
	h.p = NewPrimary(dir, log, PrimaryOptions{Epoch: epoch, Recorder: rec})
	t.Cleanup(func() {
		_ = h.p.Close()
		h.log.Crash()
		h.store.Close()
	})
	return h
}

func (h *primaryHarness) append(ops []core.EdgeOp) {
	h.t.Helper()
	if _, err := h.log.Append(ops); err != nil {
		h.t.Fatal(err)
	}
	for _, op := range ops {
		s := h.store.ShardOf(op.Src)
		h.store.ApplyShard(s, []core.EdgeOp{op})
	}
}

// appendChunks appends in small records so segments rotate — a
// prerequisite for prune/bootstrap scenarios.
func (h *primaryHarness) appendChunks(ops []core.EdgeOp, chunk int) {
	h.t.Helper()
	for i := 0; i < len(ops); i += chunk {
		end := i + chunk
		if end > len(ops) {
			end = len(ops)
		}
		h.append(ops[i:end])
	}
}

// checkpoint installs a snapshot+manifest at the current LSN and prunes,
// the way DurableStream.Checkpoint does.
func (h *primaryHarness) checkpoint(epoch uint64) {
	h.t.Helper()
	lsn := h.log.NextLSN()
	name := "snap-test.gts"
	path := filepath.Join(h.dir, name)
	f, err := os.Create(path)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := h.store.WriteSnapshot(f); err != nil {
		h.t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		h.t.Fatal(err)
	}
	crc, size, err := wal.FileCRC(path)
	if err != nil {
		h.t.Fatal(err)
	}
	if err := wal.WriteManifest(h.dir, wal.Manifest{
		Snapshot: name, LastLSN: lsn, SnapshotCRC: crc, SnapshotBytes: size,
		Shards: h.store.NumShards(), Epoch: epoch,
	}); err != nil {
		h.t.Fatal(err)
	}
	if _, err := h.log.Prune(lsn); err != nil {
		h.t.Fatal(err)
	}
}

// connect wires a follower to the harness primary over an in-process
// pipe, running both ends; the returned chan carries Run's result.
func (h *primaryHarness) connect(f *Follower) <-chan error {
	pc, fc := net.Pipe()
	go func() { _ = h.p.HandleConn(pc) }()
	done := make(chan error, 1)
	go func() { done <- f.Run(fc) }()
	return done
}

func openTestFollower(t *testing.T, dir string, rec *Recorder) *Follower {
	t.Helper()
	f, err := OpenFollower(core.DefaultConfig(), dir, FollowerOptions{
		Shards: 4, SyncInterval: -1, SegmentBytes: 1 << 14, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func waitApplied(t *testing.T, f *Follower, lsn uint64) {
	t.Helper()
	if err := f.WaitForLSN(lsn, 10*time.Second); err != nil {
		t.Fatalf("WaitForLSN(%d): %v (applied %d)", lsn, err, f.AppliedLSN())
	}
}

func TestLiveTailReplication(t *testing.T) {
	rec := NewRecorder()
	h := newPrimaryHarness(t, 0, rec)
	ops := genStream(3000, 1)
	h.append(ops[:1000])

	fdir := t.TempDir()
	frec := NewRecorder()
	f := openTestFollower(t, fdir, frec)
	defer func() { _ = f.Close() }()
	done := h.connect(f)

	waitApplied(t, f, 1000)
	// Live appends while the stream is up.
	for i := 1000; i < len(ops); i += 250 {
		h.append(ops[i : i+250])
	}
	waitApplied(t, f, uint64(len(ops)))

	testutil.CheckAgainstRef(t, f.Store(), oracleOver(ops))
	if f.State() != StateLive {
		t.Fatalf("state = %v, want live", f.State())
	}
	if f.Lag() != 0 {
		t.Fatalf("lag = %d, want 0", f.Lag())
	}
	fs := frec.Snapshot()
	if fs.OpsApplied != uint64(len(ops)) || fs.RecordsApplied == 0 {
		t.Fatalf("follower counters: applied %d ops in %d records", fs.OpsApplied, fs.RecordsApplied)
	}
	// The ship counter moves after the send, so the follower can observe
	// the ops slightly before it; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for rec.Snapshot().OpsShipped != uint64(len(ops)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ps := rec.Snapshot()
	if ps.OpsShipped != uint64(len(ops)) || ps.FramesSent == 0 {
		t.Fatalf("primary counters: shipped %d ops, want %d", ps.OpsShipped, len(ops))
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Run after Close: %v", err)
	}
}

func TestSnapshotBootstrap(t *testing.T) {
	rec := NewRecorder()
	h := newPrimaryHarness(t, 0, rec)
	ops := genStream(4000, 2)
	h.appendChunks(ops[:2500], 100)
	h.checkpoint(0) // prunes the log: a fresh follower must bootstrap
	if _, err := h.log.NewTailer(0); !errors.Is(err, wal.ErrTailPruned) {
		t.Fatalf("precondition: LSN 0 still tailable after checkpoint (err=%v)", err)
	}
	h.append(ops[2500:3000])

	fdir := t.TempDir()
	frec := NewRecorder()
	f := openTestFollower(t, fdir, frec)
	defer func() { _ = f.Close() }()
	h.connect(f)
	waitApplied(t, f, 3000)
	h.append(ops[3000:])
	waitApplied(t, f, uint64(len(ops)))

	testutil.CheckAgainstRef(t, f.Store(), oracleOver(ops))
	if got := frec.Snapshot().SnapshotsInstalled; got != 1 {
		t.Fatalf("SnapshotsInstalled = %d, want 1", got)
	}
	if got := rec.Snapshot().SnapshotsSent; got != 1 {
		t.Fatalf("SnapshotsSent = %d, want 1", got)
	}
	// Applied ops past the snapshot came through the WAL path only.
	if got := frec.Snapshot().OpsApplied; got != uint64(len(ops)-2500) {
		t.Fatalf("OpsApplied = %d, want %d", got, len(ops)-2500)
	}
	// The follower's directory must recover standalone to the same state.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	f2 := openTestFollower(t, fdir, nil)
	defer func() { _ = f2.Close() }()
	if f2.AppliedLSN() != uint64(len(ops)) {
		t.Fatalf("reopened follower at LSN %d, want %d", f2.AppliedLSN(), len(ops))
	}
	rinfo := f2.Recovery()
	if rinfo.SnapshotOps+rinfo.ReplayedOps != uint64(len(ops)) {
		t.Fatalf("LSN accounting: snapshot %d + replayed %d != %d (duplicate or lost applies)",
			rinfo.SnapshotOps, rinfo.ReplayedOps, len(ops))
	}
	testutil.CheckAgainstRef(t, f2.Store(), oracleOver(ops))
}

func TestReconnectResumes(t *testing.T) {
	h := newPrimaryHarness(t, 0, nil)
	ops := genStream(2000, 3)
	h.append(ops[:800])

	fdir := t.TempDir()
	f := openTestFollower(t, fdir, nil)
	defer func() { _ = f.Close() }()
	done := h.connect(f)
	waitApplied(t, f, 800)

	// Cut the connection (a flaky network, not a crash), append more,
	// reconnect: the stream resumes from the follower's position.
	f.mu.Lock()
	conn := f.conn
	f.mu.Unlock()
	_ = conn.Close()
	<-done
	h.append(ops[800:])
	h.connect(f)
	waitApplied(t, f, uint64(len(ops)))
	testutil.CheckAgainstRef(t, f.Store(), oracleOver(ops))
}

func TestEpochFencing(t *testing.T) {
	// Follower at a newer epoch: the primary must refuse it at hello.
	h := newPrimaryHarness(t, 0, nil)
	h.append(genStream(100, 4))
	fdir := t.TempDir()
	if err := wal.WriteManifest(fdir, wal.Manifest{Shards: 4, Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	f := openTestFollower(t, fdir, nil)
	defer func() { _ = f.Close() }()
	if f.Epoch() != 3 {
		t.Fatalf("follower epoch = %d, want 3", f.Epoch())
	}
	err := <-h.connect(f)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("Run against deposed primary = %v, want ErrStaleEpoch", err)
	}

	// Primary at a newer epoch: the follower adopts and persists it.
	h2 := newPrimaryHarness(t, 5, nil)
	h2.append(genStream(200, 5))
	fdir2 := t.TempDir()
	f2 := openTestFollower(t, fdir2, nil)
	defer func() { _ = f2.Close() }()
	h2.connect(f2)
	waitApplied(t, f2, 200)
	if f2.Epoch() != 5 {
		t.Fatalf("follower epoch = %d, want 5 (adopted)", f2.Epoch())
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
	m, ok, err := wal.LoadManifest(fdir2)
	if err != nil || !ok {
		t.Fatalf("manifest after epoch adoption: ok=%v err=%v", ok, err)
	}
	if m.Epoch != 5 {
		t.Fatalf("persisted epoch = %d, want 5", m.Epoch)
	}
}

func TestPromoteBumpsEpochAndFences(t *testing.T) {
	h := newPrimaryHarness(t, 0, nil)
	ops := genStream(1500, 6)
	h.append(ops)

	fdir := t.TempDir()
	f := openTestFollower(t, fdir, nil)
	done := h.connect(f)
	waitApplied(t, f, uint64(len(ops)))

	epoch, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 {
		t.Fatalf("promoted epoch = %d, want 1", epoch)
	}
	if err := <-done; err != nil {
		t.Fatalf("Run after Promote: %v", err)
	}
	// The promoted directory recovers with the bumped epoch and the exact
	// applied prefix.
	f2 := openTestFollower(t, fdir, nil)
	defer func() { _ = f2.Close() }()
	if f2.Epoch() != 1 {
		t.Fatalf("reopened epoch = %d, want 1", f2.Epoch())
	}
	if f2.AppliedLSN() != uint64(len(ops)) {
		t.Fatalf("promoted store at LSN %d, want %d", f2.AppliedLSN(), len(ops))
	}
	testutil.CheckAgainstRef(t, f2.Store(), oracleOver(ops))
	// The deposed primary (epoch 0) must now be refused.
	err = <-h.connect(f2)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed primary accepted: %v", err)
	}
}

func TestWaitForLSNSemantics(t *testing.T) {
	h := newPrimaryHarness(t, 0, nil)
	h.append(genStream(100, 7))
	fdir := t.TempDir()
	f := openTestFollower(t, fdir, nil)
	defer func() { _ = f.Close() }()
	h.connect(f)
	waitApplied(t, f, 100)
	// A position past the stream times out rather than returning early.
	if err := f.WaitForLSN(500, 80*time.Millisecond); !errors.Is(err, ErrWaitTimeout) {
		t.Fatalf("WaitForLSN past the stream = %v, want ErrWaitTimeout", err)
	}
	// It returns once the position is applied, never before.
	errCh := make(chan error, 1)
	go func() { errCh <- f.WaitForLSN(150, 10*time.Second) }()
	select {
	case err := <-errCh:
		t.Fatalf("WaitForLSN(150) returned before LSN 150 applied: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	h.append(genStream(50, 8))
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if f.AppliedLSN() < 150 {
		t.Fatalf("WaitForLSN returned early: applied %d < 150", f.AppliedLSN())
	}
	// A closed follower fails waits instead of hanging.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.WaitForLSN(1000, time.Second); !errors.Is(err, ErrFollowerClosed) {
		t.Fatalf("WaitForLSN after Close = %v, want ErrFollowerClosed", err)
	}
}

func TestFrameRoundTripAndCorruption(t *testing.T) {
	a, b := net.Pipe()
	fa, fb := newFrameConn(a, nil), newFrameConn(b, nil)
	defer func() { _ = fa.Close() }()
	defer func() { _ = fb.Close() }()
	payload := []byte("the quick brown fox")
	go func() { _ = fa.send(frameRecords, payload) }()
	ft, got, err := fb.recv()
	if err != nil || ft != frameRecords || string(got) != string(payload) {
		t.Fatalf("round trip: type=%d err=%v", ft, err)
	}
	// Corrupt a payload byte in flight: recv must fail the checksum.
	go func() {
		raw := make([]byte, frameHeaderSize+len(payload))
		copy(raw[frameHeaderSize:], payload)
		raw[0] = byte(len(payload))
		raw[4] = frameRecords
		// CRC computed over the true payload, then flip a payload bit.
		c := crc32.Checksum(payload, castagnoli)
		raw[5], raw[6], raw[7], raw[8] = byte(c), byte(c>>8), byte(c>>16), byte(c>>24)
		raw[frameHeaderSize] ^= 0x40
		_, _ = a.Write(raw)
	}()
	if _, _, err := fb.recv(); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("corrupt frame = %v, want ErrBadFrame", err)
	}
}
