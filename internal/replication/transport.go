package replication

// Framed transport: every message on a replication connection is a
// length-prefixed, CRC32-C-checksummed frame —
//
//	u32 payload length | u8 frame type | u32 CRC32-C(payload) | payload
//
// (little-endian throughout, matching the WAL's record format). The CRC
// covers the payload only; a corrupt length or type fails the plausibility
// checks instead. The transport runs over any net.Conn: a TCP socket in
// production, net.Pipe in tests — the protocol code cannot tell the
// difference, which is what makes the chaos suite honest.
//
// Failpoints repl/frame-send and repl/frame-recv fire before the
// respective I/O, simulating a connection dying mid-ship.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"

	"graphtinker/internal/faultinject"
)

// protocolVersion is bumped on any incompatible frame-format change; a
// primary refuses a follower hello with a different version.
const protocolVersion = 1

// Frame types. The handshake is: follower sends frameHello; the primary
// answers with an optional snapshot bootstrap (frameSnapHeader,
// frameSnapChunk*, frameSnapDone), then frameStart, then a stream of
// frameRecords/frameHeartbeat. frameError terminates either direction.
const (
	frameHello      = byte(1) // follower → primary: version, epoch, have-LSN
	frameSnapHeader = byte(2) // primary → follower: snapshot bootstrap begins
	frameSnapChunk  = byte(3) // primary → follower: raw snapshot bytes
	frameSnapDone   = byte(4) // primary → follower: snapshot complete
	frameStart      = byte(5) // primary → follower: live stream begins at LSN
	frameRecords    = byte(6) // primary → follower: one WAL record + durable frontier
	frameHeartbeat  = byte(7) // primary → follower: durable frontier, no records
	frameError      = byte(8) // either direction: terminal error with code
)

// maxFramePayload bounds a single frame; anything larger on the wire is
// corruption, not data (a WAL record tops out well below this, and
// snapshot chunks are sized by the sender).
const maxFramePayload = 64 << 20

const frameHeaderSize = 9 // u32 len + u8 type + u32 crc

// Error codes carried by frameError payloads.
const (
	errCodeGeneric    = uint32(0)
	errCodeStaleEpoch = uint32(1)
)

// ErrStaleEpoch reports a replication peer fenced off by the epoch
// counter: the sender's term is older than the receiver's, meaning the
// sender was deposed by a promotion it hasn't heard about.
var ErrStaleEpoch = errors.New("replication: stale epoch (peer was deposed by a promotion)")

// ErrBadFrame wraps transport-level corruption: implausible lengths,
// checksum mismatches, or malformed payloads.
var ErrBadFrame = errors.New("replication: bad frame")

// frameConn wraps a net.Conn with buffered, checksummed framing. Reads
// and writes are independently single-goroutine; sendMu additionally
// serializes writers so heartbeats can interleave with the record stream.
type frameConn struct {
	c      net.Conn
	br     *bufio.Reader
	sendMu sync.Mutex
	bw     *bufio.Writer
	rec    *Recorder
	rhdr   [frameHeaderSize]byte
	whdr   [frameHeaderSize]byte
	rbuf   []byte // reused receive payload buffer
}

func newFrameConn(c net.Conn, rec *Recorder) *frameConn {
	return &frameConn{
		c:   c,
		br:  bufio.NewReaderSize(c, 64<<10),
		bw:  bufio.NewWriterSize(c, 64<<10),
		rec: rec,
	}
}

// send writes one frame and flushes it to the connection.
func (fc *frameConn) send(ft byte, payload []byte) error {
	fc.sendMu.Lock()
	defer fc.sendMu.Unlock()
	return fc.sendLocked(ft, payload, true)
}

// sendBuffered writes one frame into the write buffer without flushing —
// for runs of snapshot chunks where one flush per chunk would throttle
// bootstrap. Callers must finish with a flushing send.
func (fc *frameConn) sendBuffered(ft byte, payload []byte) error {
	fc.sendMu.Lock()
	defer fc.sendMu.Unlock()
	return fc.sendLocked(ft, payload, false)
}

func (fc *frameConn) sendLocked(ft byte, payload []byte, flush bool) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("%w: oversized send (%d bytes)", ErrBadFrame, len(payload))
	}
	if err := faultinject.Inject("repl/frame-send"); err != nil {
		return fmt.Errorf("replication: send: %w", err)
	}
	le := binary.LittleEndian
	le.PutUint32(fc.whdr[0:], uint32(len(payload)))
	fc.whdr[4] = ft
	le.PutUint32(fc.whdr[5:], crc32.Checksum(payload, castagnoli))
	if _, err := fc.bw.Write(fc.whdr[:]); err != nil {
		return fmt.Errorf("replication: send: %w", err)
	}
	if _, err := fc.bw.Write(payload); err != nil {
		return fmt.Errorf("replication: send: %w", err)
	}
	if flush {
		if err := fc.bw.Flush(); err != nil {
			return fmt.Errorf("replication: send: %w", err)
		}
	}
	if fc.rec != nil {
		fc.rec.FramesSent.Inc()
		fc.rec.BytesShipped.Add(uint64(len(payload)))
	}
	return nil
}

// recv reads one frame, validating length plausibility and payload CRC.
// The returned payload is a reused buffer valid until the next recv.
func (fc *frameConn) recv() (byte, []byte, error) {
	if err := faultinject.Inject("repl/frame-recv"); err != nil {
		return 0, nil, fmt.Errorf("replication: recv: %w", err)
	}
	if _, err := io.ReadFull(fc.br, fc.rhdr[:]); err != nil {
		return 0, nil, err // io.EOF at a frame boundary is the clean-close signal
	}
	le := binary.LittleEndian
	plen := le.Uint32(fc.rhdr[0:])
	ft := fc.rhdr[4]
	crc := le.Uint32(fc.rhdr[5:])
	if plen > maxFramePayload {
		return 0, nil, fmt.Errorf("%w: implausible payload length %d", ErrBadFrame, plen)
	}
	if cap(fc.rbuf) < int(plen) {
		fc.rbuf = make([]byte, plen)
	}
	payload := fc.rbuf[:plen]
	if _, err := io.ReadFull(fc.br, payload); err != nil {
		return 0, nil, fmt.Errorf("replication: recv: truncated frame: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil, fmt.Errorf("%w: frame checksum mismatch (type %d, %d bytes)", ErrBadFrame, ft, plen)
	}
	if fc.rec != nil {
		fc.rec.FramesRecv.Inc()
	}
	return ft, payload, nil
}

// Close tears down the underlying connection. Safe to call concurrently
// with a blocked recv — that is how a promotion unparks its Run loop.
func (fc *frameConn) Close() error { return fc.c.Close() }

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// helloMsg is the follower's opening frame.
type helloMsg struct {
	version uint16
	epoch   uint64
	haveLSN uint64
}

func encodeHello(m helloMsg) []byte {
	b := make([]byte, 18)
	le := binary.LittleEndian
	le.PutUint16(b[0:], m.version)
	le.PutUint64(b[2:], m.epoch)
	le.PutUint64(b[10:], m.haveLSN)
	return b
}

func decodeHello(p []byte) (helloMsg, error) {
	if len(p) != 18 {
		return helloMsg{}, fmt.Errorf("%w: hello is %d bytes, want 18", ErrBadFrame, len(p))
	}
	le := binary.LittleEndian
	return helloMsg{
		version: le.Uint16(p[0:]),
		epoch:   le.Uint64(p[2:]),
		haveLSN: le.Uint64(p[10:]),
	}, nil
}

// snapHeaderMsg announces a snapshot bootstrap: the follower must install
// the incoming snapshot (validated against crc/size) before the live
// stream starts at lastLSN.
type snapHeaderMsg struct {
	epoch   uint64
	lastLSN uint64
	shards  uint32
	size    int64
	crc     uint32
}

func encodeSnapHeader(m snapHeaderMsg) []byte {
	b := make([]byte, 32)
	le := binary.LittleEndian
	le.PutUint64(b[0:], m.epoch)
	le.PutUint64(b[8:], m.lastLSN)
	le.PutUint32(b[16:], m.shards)
	le.PutUint64(b[20:], uint64(m.size))
	le.PutUint32(b[28:], m.crc)
	return b
}

func decodeSnapHeader(p []byte) (snapHeaderMsg, error) {
	if len(p) != 32 {
		return snapHeaderMsg{}, fmt.Errorf("%w: snapshot header is %d bytes, want 32", ErrBadFrame, len(p))
	}
	le := binary.LittleEndian
	return snapHeaderMsg{
		epoch:   le.Uint64(p[0:]),
		lastLSN: le.Uint64(p[8:]),
		shards:  le.Uint32(p[16:]),
		size:    int64(le.Uint64(p[20:])),
		crc:     le.Uint32(p[28:]),
	}, nil
}

// startMsg opens the live stream: records follow from fromLSN, and the
// primary's durable frontier seeds the follower's lag gauge.
type startMsg struct {
	epoch   uint64
	fromLSN uint64
	durable uint64
}

func encodeStart(m startMsg) []byte {
	b := make([]byte, 24)
	le := binary.LittleEndian
	le.PutUint64(b[0:], m.epoch)
	le.PutUint64(b[8:], m.fromLSN)
	le.PutUint64(b[16:], m.durable)
	return b
}

func decodeStart(p []byte) (startMsg, error) {
	if len(p) != 24 {
		return startMsg{}, fmt.Errorf("%w: start is %d bytes, want 24", ErrBadFrame, len(p))
	}
	le := binary.LittleEndian
	return startMsg{
		epoch:   le.Uint64(p[0:]),
		fromLSN: le.Uint64(p[8:]),
		durable: le.Uint64(p[16:]),
	}, nil
}

// A frameRecords payload is u64 durable-frontier followed by a WAL record
// payload (wal.EncodeOps form); a frameHeartbeat payload is the u64 alone.

func encodeErrorFrame(code uint32, msg string) []byte {
	b := make([]byte, 4+len(msg))
	binary.LittleEndian.PutUint32(b[0:], code)
	copy(b[4:], msg)
	return b
}

func decodeErrorFrame(p []byte) (uint32, string, error) {
	if len(p) < 4 {
		return 0, "", fmt.Errorf("%w: error frame is %d bytes, want >=4", ErrBadFrame, len(p))
	}
	return binary.LittleEndian.Uint32(p[0:]), string(p[4:]), nil
}

// peerError converts a received frameError into the matching Go error.
func peerError(payload []byte) error {
	code, msg, err := decodeErrorFrame(payload)
	if err != nil {
		return err
	}
	if code == errCodeStaleEpoch {
		return fmt.Errorf("%w: %s", ErrStaleEpoch, msg)
	}
	return fmt.Errorf("replication: peer error: %s", msg)
}
