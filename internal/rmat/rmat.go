// Package rmat implements the Graph500 R-MAT recursive-matrix graph
// generator the paper uses for its synthetic datasets ("Introducing the
// Graph 500", Murphy et al., CUG 2010). It also generates the
// power-law-with-dense-communities stand-in graphs this reproduction
// substitutes for the two offline-unavailable real-world datasets (see
// DESIGN.md, Substitutions).
package rmat

import "fmt"

// Params describes one R-MAT generation run.
type Params struct {
	// Scale is log2 of the number of vertices.
	Scale int
	// NumEdges is how many edge tuples to emit (duplicates possible, as
	// with the Graph500 generator; streaming duplicates into the structures
	// exercises their FIND/update paths exactly like the paper's batches).
	NumEdges uint64
	// A, B, C are the recursive quadrant probabilities (D = 1-A-B-C). The
	// Graph500 defaults are 0.57, 0.19, 0.19 (D = 0.05).
	A, B, C float64
	// Seed makes generation deterministic.
	Seed uint64
	// MaxWeight bounds the uniformly drawn edge weights [1, MaxWeight].
	// Zero means unweighted (all weights 1).
	MaxWeight uint32
	// Noise perturbs the quadrant probabilities per level (SKG noise),
	// which smooths the degree distribution. 0 disables.
	Noise float64
}

// Graph500Params returns the standard Graph500 parameters at the given
// scale with edgeFactor edges per vertex.
func Graph500Params(scale int, edgeFactor uint64, seed uint64) Params {
	return Params{
		Scale:     scale,
		NumEdges:  (uint64(1) << uint(scale)) * edgeFactor,
		A:         0.57,
		B:         0.19,
		C:         0.19,
		Seed:      seed,
		MaxWeight: 255,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Scale <= 0 || p.Scale > 40 {
		return fmt.Errorf("rmat: scale %d out of range (1..40)", p.Scale)
	}
	if p.A <= 0 || p.B < 0 || p.C < 0 || p.A+p.B+p.C >= 1 {
		return fmt.Errorf("rmat: invalid quadrant probabilities a=%g b=%g c=%g", p.A, p.B, p.C)
	}
	if p.Noise < 0 || p.Noise > 0.5 {
		return fmt.Errorf("rmat: noise %g out of range (0..0.5)", p.Noise)
	}
	return nil
}

// NumVertices returns 2^Scale.
func (p Params) NumVertices() uint64 { return 1 << uint(p.Scale) }

// Edge is one generated edge tuple.
type Edge struct {
	Src    uint64
	Dst    uint64
	Weight float32
}

// prng is a splitmix64 stream.
type prng struct{ s uint64 }

func newPRNG(seed uint64) *prng { return &prng{s: seed} }

func (r *prng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *prng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

func (r *prng) uint32n(n uint32) uint32 {
	return uint32(r.next() % uint64(n))
}

// Generator streams R-MAT edges one at a time, so arbitrarily large edge
// counts never need to be materialized.
type Generator struct {
	p   Params
	rng *prng
	n   uint64 // edges emitted so far
}

// NewGenerator validates the parameters and returns a streaming generator.
func NewGenerator(p Params) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Generator{p: p, rng: newPRNG(p.Seed)}, nil
}

// Next returns the next edge tuple and false once NumEdges have been
// produced.
func (g *Generator) Next() (Edge, bool) {
	if g.n >= g.p.NumEdges {
		return Edge{}, false
	}
	g.n++
	src, dst := g.sample()
	w := float32(1)
	if g.p.MaxWeight > 0 {
		w = float32(g.rng.uint32n(g.p.MaxWeight) + 1)
	}
	return Edge{Src: src, Dst: dst, Weight: w}, true
}

// Remaining reports how many edges the generator will still produce.
func (g *Generator) Remaining() uint64 { return g.p.NumEdges - g.n }

// sample draws one (src, dst) pair by recursive quadrant descent.
func (g *Generator) sample() (uint64, uint64) {
	a, b, c := g.p.A, g.p.B, g.p.C
	var src, dst uint64
	for level := 0; level < g.p.Scale; level++ {
		la, lb, lc := a, b, c
		if g.p.Noise > 0 {
			// Perturb each quadrant probability multiplicatively and
			// renormalize, per the smoothed Kronecker generator.
			d := 1 - a - b - c
			la *= 1 - g.p.Noise + 2*g.p.Noise*g.rng.float64()
			lb *= 1 - g.p.Noise + 2*g.p.Noise*g.rng.float64()
			lc *= 1 - g.p.Noise + 2*g.p.Noise*g.rng.float64()
			ld := d * (1 - g.p.Noise + 2*g.p.Noise*g.rng.float64())
			sum := la + lb + lc + ld
			la /= sum
			lb /= sum
			lc /= sum
		}
		r := g.rng.float64()
		src <<= 1
		dst <<= 1
		switch {
		case r < la:
			// top-left: no bits set
		case r < la+lb:
			dst |= 1
		case r < la+lb+lc:
			src |= 1
		default:
			src |= 1
			dst |= 1
		}
	}
	return src, dst
}

// Generate materializes all edges of one parameter set.
func Generate(p Params) ([]Edge, error) {
	g, err := NewGenerator(p)
	if err != nil {
		return nil, err
	}
	out := make([]Edge, 0, p.NumEdges)
	for {
		e, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, e)
	}
	return out, nil
}

// GenerateBatches materializes edges pre-split into batches of batchSize
// (the paper loads every dataset in 1M-edge batches).
func GenerateBatches(p Params, batchSize int) ([][]Edge, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("rmat: batch size %d must be positive", batchSize)
	}
	g, err := NewGenerator(p)
	if err != nil {
		return nil, err
	}
	var batches [][]Edge
	cur := make([]Edge, 0, batchSize)
	for {
		e, ok := g.Next()
		if !ok {
			break
		}
		cur = append(cur, e)
		if len(cur) == batchSize {
			batches = append(batches, cur)
			cur = make([]Edge, 0, batchSize)
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches, nil
}
