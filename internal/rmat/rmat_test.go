package rmat

import (
	"testing"
	"testing/quick"
)

func TestParamsValidation(t *testing.T) {
	cases := []Params{
		{Scale: 0, NumEdges: 10, A: 0.57, B: 0.19, C: 0.19},
		{Scale: 41, NumEdges: 10, A: 0.57, B: 0.19, C: 0.19},
		{Scale: 10, NumEdges: 10, A: 0, B: 0.19, C: 0.19},
		{Scale: 10, NumEdges: 10, A: 0.6, B: 0.3, C: 0.3},
		{Scale: 10, NumEdges: 10, A: 0.57, B: 0.19, C: 0.19, Noise: 0.9},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d accepted: %+v", i, p)
		}
	}
	if err := Graph500Params(10, 16, 1).Validate(); err != nil {
		t.Fatalf("Graph500 params rejected: %v", err)
	}
}

func TestGraph500Params(t *testing.T) {
	p := Graph500Params(12, 16, 7)
	if p.NumVertices() != 4096 {
		t.Fatalf("NumVertices = %d", p.NumVertices())
	}
	if p.NumEdges != 4096*16 {
		t.Fatalf("NumEdges = %d", p.NumEdges)
	}
}

func TestDeterminism(t *testing.T) {
	p := Graph500Params(10, 8, 99)
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(p)
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	p.Seed = 100
	c, _ := Generate(p)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical streams")
	}
}

func TestEdgesWithinVertexRange(t *testing.T) {
	p := Graph500Params(9, 10, 3)
	edges, _ := Generate(p)
	n := p.NumVertices()
	for _, e := range edges {
		if e.Src >= n || e.Dst >= n {
			t.Fatalf("edge %v outside vertex range %d", e, n)
		}
		if e.Weight < 1 || e.Weight > 255 {
			t.Fatalf("weight %g outside [1,255]", e.Weight)
		}
	}
}

func TestUnweightedGeneration(t *testing.T) {
	p := Graph500Params(8, 4, 3)
	p.MaxWeight = 0
	edges, _ := Generate(p)
	for _, e := range edges {
		if e.Weight != 1 {
			t.Fatalf("unweighted edge has weight %g", e.Weight)
		}
	}
}

func TestSkewedDegreeDistribution(t *testing.T) {
	// RMAT with Graph500 parameters must produce a heavily skewed source
	// distribution: the top 1% of sources should own far more than 1% of
	// the edges.
	p := Graph500Params(12, 16, 5)
	edges, _ := Generate(p)
	deg := make(map[uint64]int)
	for _, e := range edges {
		deg[e.Src]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := float64(len(edges)) / float64(len(deg))
	if float64(maxDeg) < 10*avg {
		t.Fatalf("max degree %d not ≫ avg %.1f — distribution not skewed", maxDeg, avg)
	}
}

func TestStreamingMatchesMaterialized(t *testing.T) {
	p := Graph500Params(8, 8, 77)
	g, err := NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	all, _ := Generate(p)
	if g.Remaining() != p.NumEdges {
		t.Fatalf("Remaining = %d", g.Remaining())
	}
	for i := 0; ; i++ {
		e, ok := g.Next()
		if !ok {
			if i != len(all) {
				t.Fatalf("stream ended at %d, want %d", i, len(all))
			}
			break
		}
		if e != all[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	if _, ok := g.Next(); ok {
		t.Fatalf("generator produced past NumEdges")
	}
}

func TestGenerateBatches(t *testing.T) {
	p := Graph500Params(8, 8, 77)
	batches, err := GenerateBatches(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for i, b := range batches {
		if i < len(batches)-1 && len(b) != 1000 {
			t.Fatalf("batch %d has %d edges", i, len(b))
		}
		total += len(b)
	}
	if uint64(total) != p.NumEdges {
		t.Fatalf("batches hold %d edges, want %d", total, p.NumEdges)
	}
	if _, err := GenerateBatches(p, 0); err == nil {
		t.Fatalf("zero batch size accepted")
	}
	if _, err := GenerateBatches(Params{}, 10); err == nil {
		t.Fatalf("invalid params accepted")
	}
}

func TestNoiseKeepsRangeAndChangesStream(t *testing.T) {
	p := Graph500Params(10, 8, 5)
	noisy := p
	noisy.Noise = 0.1
	a, _ := Generate(p)
	b, err := Generate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumVertices()
	diff := false
	for i := range b {
		if b[i].Src >= n || b[i].Dst >= n {
			t.Fatalf("noisy edge %v out of range", b[i])
		}
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst {
			diff = true
		}
	}
	if !diff {
		t.Fatalf("noise had no effect on the stream")
	}
}

func TestQuickAllEdgesInRange(t *testing.T) {
	prop := func(seed uint64, scaleRaw uint8) bool {
		scale := int(scaleRaw%8) + 4
		p := Graph500Params(scale, 4, seed)
		edges, err := Generate(p)
		if err != nil {
			return false
		}
		n := p.NumVertices()
		for _, e := range edges {
			if e.Src >= n || e.Dst >= n {
				return false
			}
		}
		return uint64(len(edges)) == p.NumEdges
	}
	cfg := &quick.Config{MaxCount: 20}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
