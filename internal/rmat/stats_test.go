package rmat

import "testing"

// Statistical sanity checks on the generator's distributions.

func TestQuadrantBiasTowardLowIDs(t *testing.T) {
	// With A=0.57 the mass concentrates in the low-id quadrant: the mean
	// source id must sit well below the uniform midpoint.
	p := Graph500Params(14, 8, 21)
	edges, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, e := range edges {
		sum += float64(e.Src)
	}
	mean := sum / float64(len(edges))
	mid := float64(p.NumVertices()) / 2
	if mean > mid*0.7 {
		t.Fatalf("mean src id %.0f not biased below midpoint %.0f", mean, mid)
	}
}

func TestSymmetricParamsGiveSymmetricMarginals(t *testing.T) {
	// With B == C the source and destination marginals should be close.
	p := Graph500Params(12, 8, 33)
	edges, _ := Generate(p)
	var srcSum, dstSum float64
	for _, e := range edges {
		srcSum += float64(e.Src)
		dstSum += float64(e.Dst)
	}
	ratio := srcSum / dstSum
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("marginals diverge: ratio %.3f", ratio)
	}
}

func TestWeightsCoverTheRange(t *testing.T) {
	p := Graph500Params(12, 8, 5)
	p.MaxWeight = 4
	edges, _ := Generate(p)
	seen := map[float32]bool{}
	for _, e := range edges {
		seen[e.Weight] = true
	}
	for w := float32(1); w <= 4; w++ {
		if !seen[w] {
			t.Fatalf("weight %g never drawn", w)
		}
	}
	if seen[0] || seen[5] {
		t.Fatalf("weights escaped [1,4]")
	}
}

func TestDistinctSeedsDecorrelate(t *testing.T) {
	a, _ := Generate(Graph500Params(12, 4, 1))
	b, _ := Generate(Graph500Params(12, 4, 2))
	same := 0
	for i := range a {
		if a[i].Src == b[i].Src && a[i].Dst == b[i].Dst {
			same++
		}
	}
	if float64(same) > 0.01*float64(len(a)) {
		t.Fatalf("streams correlate: %d/%d identical tuples", same, len(a))
	}
}
