package stinger

import "testing"

func benchEdges(n int, vertices uint64, seed uint64) []Edge {
	r := &testRand{s: seed}
	out := make([]Edge, n)
	for i := range out {
		u := r.next() % vertices
		src := (u * u) % vertices
		out[i] = Edge{Src: src, Dst: r.next() % vertices, Weight: 1}
	}
	return out
}

func BenchmarkInsert(b *testing.B) {
	edges := benchEdges(400_000, 8192, 7)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := MustNew(DefaultConfig())
		st.InsertBatch(edges)
	}
	b.SetBytes(int64(len(edges)))
}

func BenchmarkFindEdgeHit(b *testing.B) {
	edges := benchEdges(200_000, 4096, 9)
	st := MustNew(DefaultConfig())
	st.InsertBatch(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		st.FindEdge(e.Src, e.Dst)
	}
}

func BenchmarkDelete(b *testing.B) {
	edges := benchEdges(200_000, 4096, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := MustNew(DefaultConfig())
		st.InsertBatch(edges)
		b.StartTimer()
		st.DeleteBatch(edges)
	}
}

func BenchmarkForEachEdge(b *testing.B) {
	edges := benchEdges(200_000, 4096, 13)
	st := MustNew(DefaultConfig())
	st.InsertBatch(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		st.ForEachEdge(func(src, dst uint64, w float32) bool { n++; return true })
	}
}
