package stinger

import (
	"fmt"
	"sync"

	"graphtinker/internal/metrics"
)

// Parallel shards a STINGER graph across independent instances by source
// vertex hash, giving the baseline the same batch-parallel update model the
// harness uses for GraphTinker (Fig. 10 compares both at equal core
// counts).
type Parallel struct {
	shards []*Stinger
	seed   uint64
}

// NewParallel builds p independent instances.
func NewParallel(cfg Config, p int) (*Parallel, error) {
	if p <= 0 {
		return nil, fmt.Errorf("stinger: shard count %d must be positive", p)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	par := &Parallel{shards: make([]*Stinger, p), seed: 0x9b1f3a5c7d9e0b24}
	for i := range par.shards {
		par.shards[i] = MustNew(cfg)
	}
	return par, nil
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (p *Parallel) shardOf(src uint64) int {
	return int(mix64(src^p.seed) % uint64(len(p.shards)))
}

// Shards returns the number of instances.
func (p *Parallel) Shards() int { return len(p.shards) }

// Shard exposes instance i.
func (p *Parallel) Shard(i int) *Stinger { return p.shards[i] }

func (p *Parallel) partition(edges []Edge) [][]Edge {
	parts := make([][]Edge, len(p.shards))
	for i := range edges {
		s := p.shardOf(edges[i].Src)
		parts[s] = append(parts[s], edges[i])
	}
	return parts
}

// InsertBatch loads a batch concurrently, one goroutine per shard.
func (p *Parallel) InsertBatch(edges []Edge) int {
	parts := p.partition(edges)
	results := make([]int, len(p.shards))
	var wg sync.WaitGroup
	for i := range p.shards {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = p.shards[i].InsertBatch(parts[i])
		}(i)
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += r
	}
	return total
}

// DeleteBatch removes a batch concurrently.
func (p *Parallel) DeleteBatch(edges []Edge) int {
	parts := p.partition(edges)
	results := make([]int, len(p.shards))
	var wg sync.WaitGroup
	for i := range p.shards {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = p.shards[i].DeleteBatch(parts[i])
		}(i)
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += r
	}
	return total
}

// NumEdges sums live edges across shards.
func (p *Parallel) NumEdges() uint64 {
	var n uint64
	for _, s := range p.shards {
		n += s.NumEdges()
	}
	return n
}

// FindEdge routes a lookup to its shard.
func (p *Parallel) FindEdge(src, dst uint64) (float32, bool) {
	return p.shards[p.shardOf(src)].FindEdge(src, dst)
}

// NumShards reports the shard count.
func (p *Parallel) NumShards() int { return len(p.shards) }

// ForEachShardEdge streams the live edges held by one shard (read-only).
func (p *Parallel) ForEachShardEdge(shard int, fn func(src, dst uint64, w float32) bool) {
	p.shards[shard].ForEachEdge(fn)
}

// MaxVertexID returns the highest raw vertex id seen by any shard.
func (p *Parallel) MaxVertexID() (uint64, bool) {
	var maxID uint64
	saw := false
	for _, s := range p.shards {
		if id, ok := s.MaxVertexID(); ok {
			if !saw || id > maxID {
				maxID = id
			}
			saw = true
		}
	}
	return maxID, saw
}

// OutDegree routes a degree query to its shard.
func (p *Parallel) OutDegree(src uint64) uint32 {
	return p.shards[p.shardOf(src)].OutDegree(src)
}

// ForEachOutEdge routes the per-vertex walk to the owning shard.
func (p *Parallel) ForEachOutEdge(src uint64, fn func(dst uint64, w float32) bool) {
	p.shards[p.shardOf(src)].ForEachOutEdge(src, fn)
}

// ForEachEdge streams all edges shard by shard.
func (p *Parallel) ForEachEdge(fn func(src, dst uint64, w float32) bool) {
	stopped := false
	for _, s := range p.shards {
		if stopped {
			return
		}
		s.ForEachEdge(func(src, dst uint64, w float32) bool {
			if !fn(src, dst, w) {
				stopped = true
				return false
			}
			return true
		})
	}
}

// Stats merges the counters of every shard. Safe to call mid-batch: the
// per-shard counters are atomics.
func (p *Parallel) Stats() Stats {
	var total Stats
	for _, s := range p.shards {
		total.Add(s.Stats())
	}
	return total
}

// ShardStats snapshots each shard's counters individually; safe mid-batch.
func (p *Parallel) ShardStats() []Stats {
	out := make([]Stats, len(p.shards))
	for i, s := range p.shards {
		out[i] = s.Stats()
	}
	return out
}

// Instrument attaches one shared update-path recorder to every shard (see
// Stinger.Instrument). A nil rec detaches.
func (p *Parallel) Instrument(rec *metrics.UpdateRecorder) {
	for _, s := range p.shards {
		s.Instrument(rec)
	}
}
