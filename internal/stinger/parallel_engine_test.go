package stinger

import "testing"

// The parallel wrapper exposes the same engine-facing read surface as
// core.Parallel (GraphStore + ShardedStore shape); these tests pin it.

func TestParallelReadSurface(t *testing.T) {
	par, err := NewParallel(DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var batch []Edge
	for i := 0; i < 2000; i++ {
		batch = append(batch, Edge{Src: uint64(i % 100), Dst: uint64(i), Weight: 1})
	}
	par.InsertBatch(batch)

	if par.NumShards() != 3 {
		t.Fatalf("NumShards = %d", par.NumShards())
	}
	if id, ok := par.MaxVertexID(); !ok || id != 1999 {
		t.Fatalf("MaxVertexID = (%d,%v)", id, ok)
	}
	if par.OutDegree(0) != 20 {
		t.Fatalf("OutDegree(0) = %d", par.OutDegree(0))
	}
	total := 0
	for s := 0; s < par.NumShards(); s++ {
		par.ForEachShardEdge(s, func(src, dst uint64, w float32) bool {
			total++
			return true
		})
	}
	if uint64(total) != par.NumEdges() {
		t.Fatalf("shard streams cover %d edges, want %d", total, par.NumEdges())
	}
	n := 0
	par.ForEachEdge(func(src, dst uint64, w float32) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("ForEachEdge early stop visited %d", n)
	}
	var outs int
	par.ForEachOutEdge(0, func(dst uint64, w float32) bool {
		outs++
		return true
	})
	if outs != 20 {
		t.Fatalf("ForEachOutEdge(0) visited %d", outs)
	}
}

func TestParallelMaxVertexIDEmpty(t *testing.T) {
	par, _ := NewParallel(DefaultConfig(), 2)
	if _, ok := par.MaxVertexID(); ok {
		t.Fatalf("empty parallel reported vertices")
	}
}
