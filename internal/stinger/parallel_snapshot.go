package stinger

// Sharded snapshot serialization for the STINGER baseline, mirroring
// core.Parallel's format so the durability layer's differential-parity
// tests can checkpoint and recover both stores from the same op stream.
// STINGER's Parallel has no per-shard locks (its contract is that callers
// quiesce writers), so the caller must not mutate during WriteSnapshot.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// parallelSnapshotMagic identifies the format ("STPS").
const (
	parallelSnapshotMagic   = uint32(0x53545053)
	parallelSnapshotVersion = uint16(1)
)

// WriteSnapshot serializes the configuration, shard count, and every
// shard's live edges to w.
func (p *Parallel) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian

	var head [10]byte
	le.PutUint32(head[0:], parallelSnapshotMagic)
	le.PutUint16(head[4:], parallelSnapshotVersion)
	le.PutUint32(head[6:], uint32(len(p.shards)))
	if _, err := bw.Write(head[:]); err != nil {
		return fmt.Errorf("stinger: parallel snapshot header: %w", err)
	}
	var buf [8]byte
	cfg := p.shards[0].cfg
	for _, f := range []uint64{uint64(cfg.EdgesPerBlock), uint64(cfg.InitialVertexCapacity)} {
		le.PutUint64(buf[:], f)
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("stinger: parallel snapshot config: %w", err)
		}
	}

	var rec [20]byte
	for i, s := range p.shards {
		le.PutUint64(buf[:], s.NumEdges())
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("stinger: parallel snapshot shard %d: %w", i, err)
		}
		var werr error
		s.ForEachEdge(func(src, dst uint64, weight float32) bool {
			le.PutUint64(rec[0:], src)
			le.PutUint64(rec[8:], dst)
			le.PutUint32(rec[16:], math.Float32bits(weight))
			if _, err := bw.Write(rec[:]); err != nil {
				werr = err
				return false
			}
			return true
		})
		if werr != nil {
			return fmt.Errorf("stinger: parallel snapshot shard %d: %w", i, werr)
		}
	}
	return bw.Flush()
}

// ReadParallelSnapshot reconstructs a sharded STINGER store from a
// snapshot produced by Parallel.WriteSnapshot. Truncated or corrupt input
// fails with a wrapped error naming the shard and byte offset.
func ReadParallelSnapshot(r io.Reader) (*Parallel, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var off int64
	read := func(p []byte) error {
		n, err := io.ReadFull(br, p)
		off += int64(n)
		return err
	}

	var head [10]byte
	if err := read(head[:]); err != nil {
		return nil, fmt.Errorf("stinger: parallel snapshot header truncated at byte offset %d: %w", off, err)
	}
	if le.Uint32(head[0:]) != parallelSnapshotMagic {
		return nil, fmt.Errorf("stinger: not a sharded STINGER snapshot")
	}
	if v := le.Uint16(head[4:]); v != parallelSnapshotVersion {
		return nil, fmt.Errorf("stinger: unsupported parallel snapshot version %d", v)
	}
	shards := int(le.Uint32(head[6:]))
	if shards <= 0 || shards > 1<<16 {
		return nil, fmt.Errorf("stinger: parallel snapshot declares implausible shard count %d", shards)
	}
	var buf [8]byte
	if err := read(buf[:]); err != nil {
		return nil, fmt.Errorf("stinger: parallel snapshot config truncated at byte offset %d: %w", off, err)
	}
	cfg := Config{EdgesPerBlock: int(le.Uint64(buf[:]))}
	if err := read(buf[:]); err != nil {
		return nil, fmt.Errorf("stinger: parallel snapshot config truncated at byte offset %d: %w", off, err)
	}
	cfg.InitialVertexCapacity = int(le.Uint64(buf[:]))

	p, err := NewParallel(cfg, shards)
	if err != nil {
		return nil, fmt.Errorf("stinger: parallel snapshot config invalid: %w", err)
	}
	var rec [20]byte
	for s := 0; s < shards; s++ {
		if err := read(buf[:]); err != nil {
			return nil, fmt.Errorf("stinger: parallel snapshot shard %d edge count truncated at byte offset %d: %w", s, off, err)
		}
		count := le.Uint64(buf[:])
		for i := uint64(0); i < count; i++ {
			if err := read(rec[:]); err != nil {
				return nil, fmt.Errorf("stinger: parallel snapshot shard %d edge %d of %d truncated at byte offset %d: %w", s, i, count, off, err)
			}
			p.shards[s].InsertEdge(le.Uint64(rec[0:]), le.Uint64(rec[8:]), math.Float32frombits(le.Uint32(rec[16:])))
		}
	}
	return p, nil
}
