package stinger

import (
	"bytes"
	"strings"
	"testing"
)

func TestParallelSnapshotRoundTrip(t *testing.T) {
	p, err := NewParallel(DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var edges []Edge
	s := uint64(5)
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return z ^ (z >> 31)
	}
	for i := 0; i < 3000; i++ {
		edges = append(edges, Edge{Src: next() % 400, Dst: next() % 400, Weight: float32(next()%50) / 5})
	}
	p.InsertBatch(edges)
	p.DeleteBatch(edges[:500])

	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParallelSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != p.NumEdges() {
		t.Fatalf("restored %d edges, want %d", got.NumEdges(), p.NumEdges())
	}
	mismatch := false
	p.ForEachEdge(func(src, dst uint64, w float32) bool {
		gw, ok := got.FindEdge(src, dst)
		if !ok || gw != w {
			mismatch = true
			return false
		}
		return true
	})
	if mismatch {
		t.Fatal("restored STINGER store diverged from the original")
	}
}

func TestParallelSnapshotTruncated(t *testing.T) {
	p, err := NewParallel(DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	p.InsertBatch([]Edge{{Src: 1, Dst: 2, Weight: 3}, {Src: 4, Dst: 5, Weight: 6}})
	var buf bytes.Buffer
	if err := p.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadParallelSnapshot(bytes.NewReader(full[:len(full)-5])); err == nil ||
		!strings.Contains(err.Error(), "truncated at byte offset") {
		t.Fatalf("truncated snapshot: %v, want byte-offset error", err)
	}
}
