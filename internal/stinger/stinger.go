// Package stinger re-implements the STINGER dynamic-graph data structure
// (Ediger, McColl, Riedy, Bader — HPEC 2012), the state-of-the-art baseline
// GraphTinker is evaluated against. The model is the one the paper
// describes: a Logical Vertex Array indexed by vertex id, each entry
// pointing to a chain of fixed-size edge blocks. Edges within a block are
// unsorted, so insertion must traverse the entire chain to rule out a
// duplicate, and deletion must traverse until it finds the edge — the long
// probe distance GraphTinker's hashing removes. The structure has no
// SGH-style densification and no CAL-style compact mirror, so analytics
// scan the whole vertex table, including empty slots, and walk
// non-contiguous block chains.
package stinger

import (
	"fmt"
	"sync/atomic"
	"time"

	"graphtinker/internal/metrics"
)

// Edge mirrors the core package's edge record.
type Edge struct {
	Src    uint64
	Dst    uint64
	Weight float32
}

// Config parameterizes a STINGER instance.
type Config struct {
	// EdgesPerBlock is the capacity of one edge block. The paper configures
	// STINGER with an average edgeblock size of 16 (Sec. V.A).
	EdgesPerBlock int
	// InitialVertexCapacity pre-sizes the logical vertex array. Optional.
	InitialVertexCapacity int
}

// DefaultConfig returns the paper's STINGER configuration.
func DefaultConfig() Config {
	return Config{EdgesPerBlock: 16}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.EdgesPerBlock <= 0 {
		return fmt.Errorf("stinger: EdgesPerBlock %d must be positive", c.EdgesPerBlock)
	}
	if c.InitialVertexCapacity < 0 {
		return fmt.Errorf("stinger: InitialVertexCapacity %d must be non-negative", c.InitialVertexCapacity)
	}
	return nil
}

// Stats counts the work STINGER performs; CellsInspected is the probe
// distance proxy compared against GraphTinker's.
type Stats struct {
	Inserts         uint64
	Updates         uint64
	Deletes         uint64
	Finds           uint64
	CellsInspected  uint64
	BlocksTraversed uint64
	BlocksAllocated uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Inserts += other.Inserts
	s.Updates += other.Updates
	s.Deletes += other.Deletes
	s.Finds += other.Finds
	s.CellsInspected += other.CellsInspected
	s.BlocksTraversed += other.BlocksTraversed
	s.BlocksAllocated += other.BlocksAllocated
}

// statsCounters backs Stats with atomics so that concurrent FindEdge
// callers and mid-batch Stats snapshots stay race-clean — mirroring the
// GraphTinker store so instrumented comparisons are apples-to-apples.
type statsCounters struct {
	inserts, updates, deletes, finds atomic.Uint64
	cellsInspected, blocksTraversed  atomic.Uint64
	blocksAllocated                  atomic.Uint64
}

func (s *statsCounters) snapshot() Stats {
	return Stats{
		Inserts:         s.inserts.Load(),
		Updates:         s.updates.Load(),
		Deletes:         s.deletes.Load(),
		Finds:           s.finds.Load(),
		CellsInspected:  s.cellsInspected.Load(),
		BlocksTraversed: s.blocksTraversed.Load(),
		BlocksAllocated: s.blocksAllocated.Load(),
	}
}

func (s *statsCounters) reset() {
	s.inserts.Store(0)
	s.updates.Store(0)
	s.deletes.Store(0)
	s.finds.Store(0)
	s.cellsInspected.Store(0)
	s.blocksTraversed.Store(0)
	s.blocksAllocated.Store(0)
}

type stEdge struct {
	dst    uint64
	weight float32
	valid  bool
}

type vertexEntry struct {
	head   int32 // first edge block of the chain, -1 when none
	degree uint32
}

const noBlock = int32(-1)

// Stinger is a single shared-memory instance. Like the core GraphTinker
// type it is not safe for concurrent mutation; Parallel shards batches.
type Stinger struct {
	cfg Config

	// Logical Vertex Array, indexed directly by raw vertex id.
	vertices []vertexEntry

	// Edge Block Array: block b occupies edges[b*EdgesPerBlock:...], chained
	// through next.
	edges     []stEdge
	next      []int32
	numBlocks int

	numEdges uint64
	maxRawID uint64
	sawAny   bool

	stats statsCounters

	// rec, when non-nil, receives per-operation latency and probe samples
	// on the update paths (see Instrument).
	rec *metrics.UpdateRecorder
}

// New constructs an empty STINGER instance.
func New(cfg Config) (*Stinger, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st := &Stinger{cfg: cfg}
	if cfg.InitialVertexCapacity > 0 {
		st.vertices = make([]vertexEntry, 0, cfg.InitialVertexCapacity)
	}
	return st, nil
}

// MustNew is New for known-valid configurations.
func MustNew(cfg Config) *Stinger {
	st, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return st
}

// Config returns the configuration the instance was built with.
func (st *Stinger) Config() Config { return st.cfg }

func (st *Stinger) ensureVertex(id uint64) {
	for uint64(len(st.vertices)) <= id {
		st.vertices = append(st.vertices, vertexEntry{head: noBlock})
	}
}

func (st *Stinger) observe(raw uint64) {
	if !st.sawAny || raw > st.maxRawID {
		st.maxRawID = raw
		st.sawAny = true
	}
}

func (st *Stinger) allocBlock() int32 {
	b := int32(st.numBlocks)
	st.numBlocks++
	st.edges = growEdges(st.edges, st.cfg.EdgesPerBlock)
	st.next = append(st.next, noBlock)
	st.stats.blocksAllocated.Add(1)
	return b
}

// growEdges extends the edge arena by n zeroed slots without allocating a
// temporary slice, doubling capacity for amortized O(1) growth.
func growEdges(s []stEdge, n int) []stEdge {
	if cap(s) >= len(s)+n {
		return s[: len(s)+n : cap(s)]
	}
	newCap := 2 * cap(s)
	if newCap < len(s)+n {
		newCap = len(s) + n
	}
	ns := make([]stEdge, len(s)+n, newCap)
	copy(ns, s)
	return ns
}

func (st *Stinger) blockEdges(b int32) []stEdge {
	n := st.cfg.EdgesPerBlock
	return st.edges[int(b)*n : int(b)*n+n]
}

// NumEdges returns the number of live edges.
func (st *Stinger) NumEdges() uint64 { return st.numEdges }

// MaxVertexID returns the highest raw vertex id observed on either endpoint.
func (st *Stinger) MaxVertexID() (uint64, bool) { return st.maxRawID, st.sawAny }

// OutDegree returns the current out-degree of src.
func (st *Stinger) OutDegree(src uint64) uint32 {
	if src >= uint64(len(st.vertices)) {
		return 0
	}
	return st.vertices[src].degree
}

// Stats returns a copy of the accumulated counters. The counters are
// atomics, so snapshots are race-clean even beside concurrent FindEdge
// callers or a batch running on a sibling shard.
func (st *Stinger) Stats() Stats { return st.stats.snapshot() }

// ResetStats clears the counters.
func (st *Stinger) ResetStats() { st.stats.reset() }

// Instrument attaches an update-path recorder mirroring GraphTinker's: each
// InsertEdge/DeleteEdge/FindEdge records its latency and probe distance
// (cells inspected). A nil rec detaches. Do not attach or detach while
// operations are in flight.
func (st *Stinger) Instrument(rec *metrics.UpdateRecorder) { st.rec = rec }

// Recorder returns the attached recorder (nil when detached).
func (st *Stinger) Recorder() *metrics.UpdateRecorder { return st.rec }

// MemoryBytes estimates the resident footprint.
func (st *Stinger) MemoryBytes() uint64 {
	const edgeBytes = 8 + 4 + 1
	return uint64(len(st.edges))*edgeBytes + uint64(len(st.next))*4 + uint64(len(st.vertices))*12
}

// InsertEdge inserts (src, dst, w); it returns true when the edge is new.
// The whole block chain of src is probed first to rule out a duplicate —
// the traversal cost the paper identifies as STINGER's weakness.
func (st *Stinger) InsertEdge(src, dst uint64, w float32) bool {
	if st.rec == nil {
		isNew, _ := st.insertEdge(src, dst, w)
		return isNew
	}
	start := time.Now()
	isNew, cells := st.insertEdge(src, dst, w)
	st.rec.RecordInsert(time.Since(start), cells)
	return isNew
}

func (st *Stinger) insertEdge(src, dst uint64, w float32) (bool, int) {
	st.observe(src)
	st.observe(dst)
	st.ensureVertex(src)
	v := &st.vertices[src]

	freeBlock, freeSlot := noBlock, -1
	lastBlock := noBlock
	var blocks, cells uint64
	for b := v.head; b != noBlock; b = st.next[b] {
		blocks++
		ed := st.blockEdges(b)
		for i := range ed {
			cells++
			if ed[i].valid {
				if ed[i].dst == dst {
					ed[i].weight = w
					st.stats.blocksTraversed.Add(blocks)
					st.stats.cellsInspected.Add(cells)
					st.stats.updates.Add(1)
					return false, int(cells)
				}
			} else if freeSlot < 0 {
				freeBlock, freeSlot = b, i
			}
		}
		lastBlock = b
	}
	st.stats.blocksTraversed.Add(blocks)
	st.stats.cellsInspected.Add(cells)

	if freeSlot < 0 {
		nb := st.allocBlock()
		if lastBlock == noBlock {
			v.head = nb
		} else {
			st.next[lastBlock] = nb
		}
		freeBlock, freeSlot = nb, 0
	}
	st.blockEdges(freeBlock)[freeSlot] = stEdge{dst: dst, weight: w, valid: true}
	v.degree++
	st.numEdges++
	st.stats.inserts.Add(1)
	return true, int(cells)
}

// InsertBatch inserts a batch, returning how many edges were new.
func (st *Stinger) InsertBatch(edges []Edge) int {
	inserted := 0
	for _, e := range edges {
		if st.InsertEdge(e.Src, e.Dst, e.Weight) {
			inserted++
		}
	}
	return inserted
}

// FindEdge reports the weight of (src, dst) if stored. Safe for concurrent
// callers: the traversal mutates nothing but atomic counters.
func (st *Stinger) FindEdge(src, dst uint64) (float32, bool) {
	if st.rec == nil {
		w, _, ok := st.findEdge(src, dst)
		return w, ok
	}
	start := time.Now()
	w, cells, ok := st.findEdge(src, dst)
	st.rec.RecordFind(time.Since(start), cells)
	return w, ok
}

func (st *Stinger) findEdge(src, dst uint64) (float32, int, bool) {
	st.stats.finds.Add(1)
	if src >= uint64(len(st.vertices)) {
		return 0, 0, false
	}
	var blocks, cells uint64
	for b := st.vertices[src].head; b != noBlock; b = st.next[b] {
		blocks++
		ed := st.blockEdges(b)
		for i := range ed {
			cells++
			if ed[i].valid && ed[i].dst == dst {
				st.stats.blocksTraversed.Add(blocks)
				st.stats.cellsInspected.Add(cells)
				return ed[i].weight, int(cells), true
			}
		}
	}
	st.stats.blocksTraversed.Add(blocks)
	st.stats.cellsInspected.Add(cells)
	return 0, int(cells), false
}

// DeleteEdge removes (src, dst), returning false when absent. The slot is
// flagged invalid; STINGER does not compact chains.
func (st *Stinger) DeleteEdge(src, dst uint64) bool {
	if st.rec == nil {
		removed, _ := st.deleteEdge(src, dst)
		return removed
	}
	start := time.Now()
	removed, cells := st.deleteEdge(src, dst)
	st.rec.RecordDelete(time.Since(start), cells)
	return removed
}

func (st *Stinger) deleteEdge(src, dst uint64) (bool, int) {
	if src >= uint64(len(st.vertices)) {
		return false, 0
	}
	v := &st.vertices[src]
	var blocks, cells uint64
	for b := v.head; b != noBlock; b = st.next[b] {
		blocks++
		ed := st.blockEdges(b)
		for i := range ed {
			cells++
			if ed[i].valid && ed[i].dst == dst {
				ed[i].valid = false
				v.degree--
				st.numEdges--
				st.stats.blocksTraversed.Add(blocks)
				st.stats.cellsInspected.Add(cells)
				st.stats.deletes.Add(1)
				return true, int(cells)
			}
		}
	}
	st.stats.blocksTraversed.Add(blocks)
	st.stats.cellsInspected.Add(cells)
	return false, int(cells)
}

// DeleteBatch removes a batch, returning how many edges were present.
func (st *Stinger) DeleteBatch(edges []Edge) int {
	removed := 0
	for _, e := range edges {
		if st.DeleteEdge(e.Src, e.Dst) {
			removed++
		}
	}
	return removed
}

// ForEachOutEdge visits the live out-edges of src. The callback returns
// false to stop.
func (st *Stinger) ForEachOutEdge(src uint64, fn func(dst uint64, w float32) bool) {
	if src >= uint64(len(st.vertices)) {
		return
	}
	for b := st.vertices[src].head; b != noBlock; b = st.next[b] {
		ed := st.blockEdges(b)
		for i := range ed {
			if ed[i].valid {
				if !fn(ed[i].dst, ed[i].weight) {
					return
				}
			}
		}
	}
}

// ForEachEdge visits every live edge by scanning the full logical vertex
// array — empty slots included, since STINGER has no non-empty-vertex
// index. The callback returns false to stop.
func (st *Stinger) ForEachEdge(fn func(src, dst uint64, w float32) bool) {
	for src := range st.vertices {
		for b := st.vertices[src].head; b != noBlock; b = st.next[b] {
			ed := st.blockEdges(b)
			for i := range ed {
				if ed[i].valid {
					if !fn(uint64(src), ed[i].dst, ed[i].weight) {
						return
					}
				}
			}
		}
	}
}

// Edges returns a snapshot of all live edges.
func (st *Stinger) Edges() []Edge {
	out := make([]Edge, 0, st.numEdges)
	st.ForEachEdge(func(src, dst uint64, w float32) bool {
		out = append(out, Edge{Src: src, Dst: dst, Weight: w})
		return true
	})
	return out
}

// OutEdges returns a snapshot of the out-edges of src.
func (st *Stinger) OutEdges(src uint64) []Edge {
	var out []Edge
	st.ForEachOutEdge(src, func(dst uint64, w float32) bool {
		out = append(out, Edge{Src: src, Dst: dst, Weight: w})
		return true
	})
	return out
}
