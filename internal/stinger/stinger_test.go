package stinger

import (
	"sort"
	"testing"
	"testing/quick"

	"graphtinker/internal/testutil"
)

// Reference model shared by the STINGER tests; the implementation is the
// repository-wide oracle in internal/testutil.
type refGraph struct {
	*testutil.RefGraph
	adj map[uint64]map[uint64]float32 // aliases RefGraph.Adj
}

func newRefGraph() *refGraph {
	r := testutil.NewRefGraph()
	return &refGraph{RefGraph: r, adj: r.Adj}
}

func (r *refGraph) insert(src, dst uint64, w float32) bool { return r.Insert(src, dst, w) }
func (r *refGraph) delete(src, dst uint64) bool            { return r.Delete(src, dst) }
func (r *refGraph) numEdges() uint64                       { return r.NumEdges() }

type testRand struct{ s uint64 }

func (r *testRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
func (r *testRand) intn(n int) int { return int(r.next() % uint64(n)) }

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if _, err := New(Config{EdgesPerBlock: 0}); err == nil {
		t.Fatalf("zero block size accepted")
	}
	if _, err := New(Config{EdgesPerBlock: 16, InitialVertexCapacity: -1}); err == nil {
		t.Fatalf("negative capacity accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustNew did not panic")
		}
	}()
	MustNew(Config{})
}

func TestInsertFindDelete(t *testing.T) {
	st := MustNew(DefaultConfig())
	if !st.InsertEdge(1, 2, 3) {
		t.Fatalf("insert new = false")
	}
	if st.InsertEdge(1, 2, 5) {
		t.Fatalf("duplicate insert reported new")
	}
	if w, ok := st.FindEdge(1, 2); !ok || w != 5 {
		t.Fatalf("FindEdge = (%g,%v)", w, ok)
	}
	if _, ok := st.FindEdge(2, 1); ok {
		t.Fatalf("reverse edge present")
	}
	if !st.DeleteEdge(1, 2) || st.DeleteEdge(1, 2) {
		t.Fatalf("delete semantics wrong")
	}
	if st.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d", st.NumEdges())
	}
	stats := st.Stats()
	if stats.Inserts != 1 || stats.Updates != 1 || stats.Deletes != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	st.ResetStats()
	if st.Stats() != (Stats{}) {
		t.Fatalf("ResetStats left %+v", st.Stats())
	}
}

func TestChainGrowthBeyondOneBlock(t *testing.T) {
	st := MustNew(DefaultConfig())
	const deg = 100 // > 16 per block → chained blocks
	for i := 0; i < deg; i++ {
		st.InsertEdge(7, uint64(i), 1)
	}
	if st.OutDegree(7) != deg {
		t.Fatalf("OutDegree = %d", st.OutDegree(7))
	}
	if st.Stats().BlocksAllocated < deg/16 {
		t.Fatalf("expected chained blocks, allocated %d", st.Stats().BlocksAllocated)
	}
	for i := 0; i < deg; i++ {
		if _, ok := st.FindEdge(7, uint64(i)); !ok {
			t.Fatalf("edge %d lost", i)
		}
	}
}

func TestDeletedSlotsAreReused(t *testing.T) {
	st := MustNew(DefaultConfig())
	for i := 0; i < 64; i++ {
		st.InsertEdge(1, uint64(i), 1)
	}
	blocks := st.Stats().BlocksAllocated
	for i := 0; i < 64; i++ {
		st.DeleteEdge(1, uint64(i))
	}
	for i := 100; i < 164; i++ {
		st.InsertEdge(1, uint64(i), 1)
	}
	if st.Stats().BlocksAllocated != blocks {
		t.Fatalf("reinsertion allocated blocks: %d -> %d", blocks, st.Stats().BlocksAllocated)
	}
}

func TestRandomOpsEquivalence(t *testing.T) {
	st := MustNew(DefaultConfig())
	ref := newRefGraph()
	r := &testRand{s: 42}
	for i := 0; i < 30000; i++ {
		src, dst := uint64(r.intn(150)), uint64(r.intn(150))
		if r.intn(3) == 2 {
			if got, want := st.DeleteEdge(src, dst), ref.delete(src, dst); got != want {
				t.Fatalf("op %d delete: got %v want %v", i, got, want)
			}
		} else {
			w := float32(r.intn(100))
			if got, want := st.InsertEdge(src, dst, w), ref.insert(src, dst, w); got != want {
				t.Fatalf("op %d insert: got %v want %v", i, got, want)
			}
		}
	}
	if st.NumEdges() != ref.numEdges() {
		t.Fatalf("NumEdges = %d, want %d", st.NumEdges(), ref.numEdges())
	}
	// Full iteration equivalence.
	type key struct{ src, dst uint64 }
	got := map[key]float32{}
	st.ForEachEdge(func(src, dst uint64, w float32) bool {
		got[key{src, dst}] = w
		return true
	})
	for src, m := range ref.adj {
		for dst, w := range m {
			if gw, ok := got[key{src, dst}]; !ok || gw != w {
				t.Fatalf("edge (%d,%d) mismatch: (%g,%v) want %g", src, dst, gw, ok, w)
			}
		}
		if st.OutDegree(src) != uint32(len(m)) {
			t.Fatalf("degree(%d) = %d, want %d", src, st.OutDegree(src), len(m))
		}
	}
	if uint64(len(got)) != ref.numEdges() {
		t.Fatalf("iterated %d edges, want %d", len(got), ref.numEdges())
	}
}

func TestProbeCostGrowsWithDegree(t *testing.T) {
	// The defining weakness: per-insert probe cost grows linearly with the
	// vertex degree. Verify inserting the Nth edge costs more inspections
	// than inserting the first.
	st := MustNew(DefaultConfig())
	for i := 0; i < 1000; i++ {
		st.InsertEdge(1, uint64(i), 1)
	}
	before := st.Stats().CellsInspected
	st.InsertEdge(1, 5000, 1)
	costLate := st.Stats().CellsInspected - before

	st2 := MustNew(DefaultConfig())
	before = st2.Stats().CellsInspected
	st2.InsertEdge(1, 5000, 1)
	costEarly := st2.Stats().CellsInspected - before
	if costLate < 10*costEarly {
		t.Fatalf("late insert cost %d not ≫ early cost %d", costLate, costEarly)
	}
}

func TestForEachEdgeScansEmptyVertices(t *testing.T) {
	// STINGER's full scan covers the entire logical vertex array.
	st := MustNew(DefaultConfig())
	st.InsertEdge(0, 1, 1)
	st.InsertEdge(99999, 1, 1)
	var edges []Edge
	st.ForEachEdge(func(src, dst uint64, w float32) bool {
		edges = append(edges, Edge{src, dst, w})
		return true
	})
	if len(edges) != 2 {
		t.Fatalf("found %d edges", len(edges))
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Src < edges[j].Src })
	if edges[0].Src != 0 || edges[1].Src != 99999 {
		t.Fatalf("edges = %v", edges)
	}
	if len(st.vertices) < 100000 {
		t.Fatalf("vertex table should span the raw id space; len=%d", len(st.vertices))
	}
}

func TestEarlyStop(t *testing.T) {
	st := MustNew(DefaultConfig())
	for i := 0; i < 100; i++ {
		st.InsertEdge(uint64(i%3), uint64(i), 1)
	}
	n := 0
	st.ForEachEdge(func(src, dst uint64, w float32) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	n = 0
	st.ForEachOutEdge(0, func(dst uint64, w float32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("out-edge early stop visited %d", n)
	}
}

func TestMaxVertexIDAndMemory(t *testing.T) {
	st := MustNew(DefaultConfig())
	if _, ok := st.MaxVertexID(); ok {
		t.Fatalf("empty graph reported vertices")
	}
	st.InsertEdge(5, 800, 1)
	if id, ok := st.MaxVertexID(); !ok || id != 800 {
		t.Fatalf("MaxVertexID = (%d,%v)", id, ok)
	}
	if st.MemoryBytes() == 0 {
		t.Fatalf("memory accounting returned 0")
	}
}

func TestOutEdgesAndEdgesSnapshots(t *testing.T) {
	st := MustNew(DefaultConfig())
	st.InsertEdge(1, 2, 1)
	st.InsertEdge(1, 3, 2)
	st.InsertEdge(4, 5, 3)
	if got := len(st.OutEdges(1)); got != 2 {
		t.Fatalf("OutEdges(1) = %d", got)
	}
	if got := len(st.Edges()); got != 3 {
		t.Fatalf("Edges() = %d", got)
	}
	if got := st.OutEdges(777); got != nil {
		t.Fatalf("OutEdges of unknown vertex = %v", got)
	}
}

func TestParallelMatchesSingle(t *testing.T) {
	single := MustNew(DefaultConfig())
	par, err := NewParallel(DefaultConfig(), 4)
	if err != nil {
		t.Fatalf("NewParallel: %v", err)
	}
	r := &testRand{s: 31337}
	var batch []Edge
	for i := 0; i < 10000; i++ {
		batch = append(batch, Edge{uint64(r.intn(300)), uint64(r.intn(300)), 1})
	}
	a := single.InsertBatch(batch)
	b := par.InsertBatch(batch)
	if a != b {
		t.Fatalf("new counts differ: %d vs %d", a, b)
	}
	if single.NumEdges() != par.NumEdges() {
		t.Fatalf("edge counts differ")
	}
	del := par.DeleteBatch(batch[:2000])
	sdel := single.DeleteBatch(batch[:2000])
	if del != sdel {
		t.Fatalf("delete counts differ: %d vs %d", del, sdel)
	}
	for _, e := range batch[:100] {
		sw, sok := single.FindEdge(e.Src, e.Dst)
		pw, pok := par.FindEdge(e.Src, e.Dst)
		if sw != pw || sok != pok {
			t.Fatalf("FindEdge differs for %v", e)
		}
	}
	if par.Stats().Inserts != single.Stats().Inserts {
		t.Fatalf("merged insert stats differ")
	}
	if par.Shards() != 4 || par.Shard(0) == nil {
		t.Fatalf("shard accessors broken")
	}
}

func TestParallelValidation(t *testing.T) {
	if _, err := NewParallel(DefaultConfig(), 0); err == nil {
		t.Fatalf("zero shards accepted")
	}
	if _, err := NewParallel(Config{}, 2); err == nil {
		t.Fatalf("invalid config accepted")
	}
}

func TestQuickEquivalence(t *testing.T) {
	type op struct {
		Kind uint8
		Src  uint16
		Dst  uint16
		W    uint16
	}
	prop := func(ops []op) bool {
		st := MustNew(DefaultConfig())
		ref := newRefGraph()
		for _, o := range ops {
			src, dst := uint64(o.Src%64), uint64(o.Dst%64)
			w := float32(o.W % 100)
			if o.Kind%3 == 2 {
				if st.DeleteEdge(src, dst) != ref.delete(src, dst) {
					return false
				}
			} else {
				if st.InsertEdge(src, dst, w) != ref.insert(src, dst, w) {
					return false
				}
			}
		}
		return st.NumEdges() == ref.numEdges()
	}
	n := 60
	if testing.Short() {
		n = 10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}
