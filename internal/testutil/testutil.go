// Package testutil holds the shared single-threaded reference oracle the
// repository's differential tests compare real stores against: a map of
// adjacency maps with trivially-correct semantics. The core, stinger,
// ingest and bench test suites all cross-check against this one
// implementation instead of each keeping a private copy.
//
// The package deliberately does not import internal/core: that keeps it
// importable from core's own in-package tests (no cycle). Its Edge struct
// is field-compatible with core.Edge, so values convert directly with
// core.Edge(e) / testutil.Edge(e).
package testutil

import (
	"sort"
	"testing"
)

// Edge is a weighted directed edge; field-compatible with core.Edge.
type Edge struct {
	Src    uint64
	Dst    uint64
	Weight float32
}

// RefGraph is the reference implementation: adjacency maps with
// last-write-wins weights. It is not safe for concurrent use — it models
// the sequential semantics concurrent stores must converge to.
type RefGraph struct {
	// Adj maps source → destination → weight. Exposed so tests can walk
	// the oracle's state directly.
	Adj map[uint64]map[uint64]float32
}

// NewRefGraph returns an empty oracle.
func NewRefGraph() *RefGraph {
	return &RefGraph{Adj: make(map[uint64]map[uint64]float32)}
}

// Insert adds or updates an edge; it reports whether the edge was new.
func (r *RefGraph) Insert(src, dst uint64, w float32) bool {
	m, ok := r.Adj[src]
	if !ok {
		m = make(map[uint64]float32)
		r.Adj[src] = m
	}
	_, existed := m[dst]
	m[dst] = w
	return !existed
}

// Delete removes an edge; it reports whether the edge was present.
func (r *RefGraph) Delete(src, dst uint64) bool {
	m, ok := r.Adj[src]
	if !ok {
		return false
	}
	if _, ok := m[dst]; !ok {
		return false
	}
	delete(m, dst)
	return true
}

// Find looks up an edge's weight.
func (r *RefGraph) Find(src, dst uint64) (float32, bool) {
	m, ok := r.Adj[src]
	if !ok {
		return 0, false
	}
	w, ok := m[dst]
	return w, ok
}

// NumEdges counts live edges.
func (r *RefGraph) NumEdges() uint64 {
	var n uint64
	for _, m := range r.Adj {
		n += uint64(len(m))
	}
	return n
}

// Degree returns the out-degree of src.
func (r *RefGraph) Degree(src uint64) uint32 {
	return uint32(len(r.Adj[src]))
}

// Edges returns the live edge set in arbitrary order.
func (r *RefGraph) Edges() []Edge {
	var out []Edge
	for src, m := range r.Adj {
		for dst, w := range m {
			out = append(out, Edge{Src: src, Dst: dst, Weight: w})
		}
	}
	return out
}

// SortEdges orders edges by (Src, Dst) for deterministic comparison.
func SortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Src != es[j].Src {
			return es[i].Src < es[j].Src
		}
		return es[i].Dst < es[j].Dst
	})
}

// Store is the minimal callback-based read surface CheckAgainstRef needs.
// core.GraphTinker, core.Parallel and stinger.Stinger all satisfy it.
type Store interface {
	NumEdges() uint64
	FindEdge(src, dst uint64) (float32, bool)
	OutDegree(src uint64) uint32
	ForEachEdge(fn func(src, dst uint64, w float32) bool)
	ForEachOutEdge(src uint64, fn func(dst uint64, w float32) bool)
}

// CheckAgainstRef compares a store's full observable state — edge set,
// per-source degrees and walks, point lookups — against the oracle and
// fails the test on the first divergence.
func CheckAgainstRef(t testing.TB, store Store, ref *RefGraph) {
	t.Helper()
	if got, want := store.NumEdges(), ref.NumEdges(); got != want {
		t.Fatalf("NumEdges = %d, reference has %d", got, want)
	}
	var got []Edge
	store.ForEachEdge(func(src, dst uint64, w float32) bool {
		got = append(got, Edge{Src: src, Dst: dst, Weight: w})
		return true
	})
	want := ref.Edges()
	SortEdges(got)
	SortEdges(want)
	if len(got) != len(want) {
		t.Fatalf("store holds %d edges, reference has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edge %d: got %v, want %v", i, got[i], want[i])
		}
	}
	for src, m := range ref.Adj {
		if got, want := store.OutDegree(src), uint32(len(m)); got != want {
			t.Fatalf("OutDegree(%d) = %d, want %d", src, got, want)
		}
		var walked uint32
		store.ForEachOutEdge(src, func(dst uint64, w float32) bool {
			rw, ok := m[dst]
			if !ok {
				t.Fatalf("ForEachOutEdge(%d) yielded absent edge to %d", src, dst)
			}
			if rw != w {
				t.Fatalf("ForEachOutEdge(%d): edge to %d has weight %g, want %g", src, dst, w, rw)
			}
			walked++
			return true
		})
		if walked != uint32(len(m)) {
			t.Fatalf("ForEachOutEdge(%d) yielded %d edges, want %d", src, walked, len(m))
		}
		for dst, w := range m {
			gw, ok := store.FindEdge(src, dst)
			if !ok {
				t.Fatalf("FindEdge(%d,%d) missing", src, dst)
			}
			if gw != w {
				t.Fatalf("FindEdge(%d,%d) = %g, want %g", src, dst, gw, w)
			}
		}
	}
}

// Rand is the xorshift-style deterministic PRNG the test suites share for
// reproducible op streams.
type Rand struct{ S uint64 }

// Next returns the next 64-bit value.
func (r *Rand) Next() uint64 {
	r.S += 0x9e3779b97f4a7c15
	z := r.S
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int { return int(r.Next() % uint64(n)) }

// Float32 returns a small positive weight.
func (r *Rand) Float32() float32 { return float32(r.Next()%1000) / 100 }
