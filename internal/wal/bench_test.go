package wal

import (
	"testing"

	"graphtinker/internal/core"
)

// BenchmarkAppend measures the buffered append hot path: encode one
// record and hand it to the segment writer, with group commit deferred
// (SyncInterval < 0) so fsync cost stays out of the loop. Prune keeps the
// on-disk footprint bounded across calibration rounds.
func BenchmarkAppend(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{SyncInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	ops := make([]core.EdgeOp, 512)
	s := uint64(41)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for i := range ops {
		ops[i] = core.InsertOp(next()%16384, next()%16384, 1)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lsn, err := l.Append(ops)
		if err != nil {
			b.Fatal(err)
		}
		if i%4096 == 4095 {
			b.StopTimer()
			if _, err := l.Prune(lsn); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(ops)), "ops/op")
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
}
