package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"graphtinker/internal/core"
)

// buildSegment encodes a valid segment holding the given records (used to
// seed the fuzzer with well-formed inputs it can mutate).
func buildSegment(firstLSN uint64, recs ...[]core.EdgeOp) []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian
	var head [headerSize]byte
	le.PutUint32(head[0:], segMagic)
	le.PutUint16(head[4:], segVersion)
	le.PutUint64(head[8:], firstLSN)
	buf.Write(head[:])
	lsn := firstLSN
	for _, ops := range recs {
		payload := encodePayload(lsn, ops)
		var rh [recordHeaderSize]byte
		le.PutUint32(rh[0:], uint32(len(payload)))
		le.PutUint32(rh[4:], crc32.Checksum(payload, castagnoli))
		buf.Write(rh[:])
		buf.Write(payload)
		lsn += uint64(len(ops))
	}
	return buf.Bytes()
}

// FuzzWALReplay feeds arbitrary bytes to the segment parser as the first
// segment of a log. Replay must never panic, must only yield in-order
// LSN-contiguous ops, and whatever prefix it accepts must survive an
// Open (torn-tail truncation) + second Replay unchanged.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildSegment(0))
	f.Add(buildSegment(0, []core.EdgeOp{core.InsertOp(1, 2, 3)}))
	f.Add(buildSegment(0,
		[]core.EdgeOp{core.InsertOp(1, 2, 3), core.DeleteOp(1, 2)},
		[]core.EdgeOp{core.InsertOp(7, 8, 0.5)},
	))
	// A torn tail: a valid record followed by half of another.
	whole := buildSegment(0, []core.EdgeOp{core.InsertOp(1, 2, 3)}, []core.EdgeOp{core.InsertOp(4, 5, 6)})
	f.Add(whole[:len(whole)-10])
	// Corrupt checksum on the second record.
	mut := append([]byte(nil), whole...)
	mut[len(mut)-3] ^= 0xff
	f.Add(mut)
	// Implausible record length.
	big := buildSegment(0)
	big = append(big, 0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4)
	f.Add(big)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644); err != nil {
			t.Skip()
		}
		var first []core.EdgeOp
		wantLSN := uint64(0)
		next, err := Replay(dir, 0, nil, func(lsn uint64, ops []core.EdgeOp) error {
			if lsn != wantLSN {
				t.Fatalf("replay skipped LSNs: record at %d, want %d", lsn, wantLSN)
			}
			wantLSN += uint64(len(ops))
			first = append(first, ops...)
			return nil
		})
		if err != nil {
			return // rejected as corrupt: fine, as long as no panic
		}
		if next != wantLSN {
			t.Fatalf("Replay returned next=%d, streamed to %d", next, wantLSN)
		}

		// Open must accept the same prefix (truncating any torn tail)
		// and a re-replay must reproduce it exactly.
		l, err := Open(dir, Options{})
		if err != nil {
			return // interior corruption Open rejects; Replay tolerated tail-only
		}
		if got := l.NextLSN(); got != next {
			t.Fatalf("Open.NextLSN=%d, Replay saw %d", got, next)
		}
		l.Close()
		var second []core.EdgeOp
		if _, err := Replay(dir, 0, nil, func(lsn uint64, ops []core.EdgeOp) error {
			second = append(second, ops...)
			return nil
		}); err != nil {
			t.Fatalf("replay after truncation: %v", err)
		}
		if len(second) != len(first) {
			t.Fatalf("replay after truncation yielded %d ops, want %d", len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("op %d changed across truncation", i)
			}
		}
	})
}
