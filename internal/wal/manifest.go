package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ManifestName is the manifest's file name inside a durability directory.
const ManifestName = "MANIFEST.json"

// Manifest ties one snapshot to a WAL position: recovery loads Snapshot,
// then replays the log from LastLSN. It is written atomically (temp file +
// rename), so a crash mid-checkpoint leaves the previous manifest intact.
type Manifest struct {
	// Snapshot is the snapshot file name, relative to the manifest's
	// directory.
	Snapshot string `json:"snapshot"`
	// LastLSN is the op count the snapshot covers: every op with LSN <
	// LastLSN is reflected in the snapshot and must not be replayed.
	LastLSN uint64 `json:"last_lsn"`
	// SnapshotCRC/SnapshotBytes validate the snapshot file on load.
	SnapshotCRC   uint32 `json:"snapshot_crc32c"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	// Shards records the sharded store's width (1 for a session graph).
	Shards int `json:"shards"`
	// Epoch is the replication term counter: it starts at 0 for a fresh
	// primary and is bumped (and persisted here, before any write is
	// accepted) when a follower is promoted. A node refuses replication
	// streams from a primary whose epoch is below its own — the fencing
	// that keeps a deposed primary from resurrecting overwritten history.
	// Checkpoints preserve it; manifests written before replication
	// existed decode as epoch 0.
	Epoch uint64 `json:"epoch"`
}

// WriteManifest atomically installs m as dir's manifest.
func WriteManifest(dir string, m Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		_ = tmp.Close() // already failing; close error is cleanup noise
		os.Remove(tmpName)
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: manifest: %w", err)
	}
	return syncDir(dir)
}

// LoadManifest reads dir's manifest; ok is false when none exists.
func LoadManifest(dir string) (m Manifest, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Manifest{}, false, nil
		}
		return Manifest{}, false, fmt.Errorf("wal: manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("wal: manifest: %w", err)
	}
	return m, true, nil
}

// OpenManifestSnapshot validates a manifest's snapshot file (size +
// CRC32-C against the recorded pair) and opens it for reading — the
// shared recovery entry point for durable streams, sessions, and
// replication followers.
func OpenManifestSnapshot(dir string, m Manifest) (*os.File, error) {
	path := filepath.Join(dir, m.Snapshot)
	crc, size, err := FileCRC(path)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot %s: %w", m.Snapshot, err)
	}
	if size != m.SnapshotBytes || crc != m.SnapshotCRC {
		return nil, fmt.Errorf("wal: snapshot %s fails validation: got %d bytes crc %08x, manifest says %d bytes crc %08x",
			m.Snapshot, size, crc, m.SnapshotBytes, m.SnapshotCRC)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	return f, nil
}

// FileCRC computes the CRC32-C and size of a file — the snapshot
// validation pair stored in the manifest.
func FileCRC(path string) (uint32, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = f.Close() }() // read-only; the CRC/read errors are the signal
	h := crc32.New(castagnoli)
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, 0, err
	}
	return h.Sum32(), n, nil
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	defer func() { _ = d.Close() }() // the Sync below carries the durability
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
