package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ManifestName is the manifest's file name inside a durability directory.
const ManifestName = "MANIFEST.json"

// Manifest ties one snapshot to a WAL position: recovery loads Snapshot,
// then replays the log from LastLSN. It is written atomically (temp file +
// rename), so a crash mid-checkpoint leaves the previous manifest intact.
type Manifest struct {
	// Snapshot is the snapshot file name, relative to the manifest's
	// directory.
	Snapshot string `json:"snapshot"`
	// LastLSN is the op count the snapshot covers: every op with LSN <
	// LastLSN is reflected in the snapshot and must not be replayed.
	LastLSN uint64 `json:"last_lsn"`
	// SnapshotCRC/SnapshotBytes validate the snapshot file on load.
	SnapshotCRC   uint32 `json:"snapshot_crc32c"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	// Shards records the sharded store's width (1 for a session graph).
	Shards int `json:"shards"`
}

// WriteManifest atomically installs m as dir's manifest.
func WriteManifest(dir string, m Manifest) error {
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return fmt.Errorf("wal: manifest: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		_ = tmp.Close() // already failing; close error is cleanup noise
		os.Remove(tmpName)
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("wal: manifest: %w", err)
	}
	return syncDir(dir)
}

// LoadManifest reads dir's manifest; ok is false when none exists.
func LoadManifest(dir string) (m Manifest, ok bool, err error) {
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Manifest{}, false, nil
		}
		return Manifest{}, false, fmt.Errorf("wal: manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return Manifest{}, false, fmt.Errorf("wal: manifest: %w", err)
	}
	return m, true, nil
}

// FileCRC computes the CRC32-C and size of a file — the snapshot
// validation pair stored in the manifest.
func FileCRC(path string) (uint32, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = f.Close() }() // read-only; the CRC/read errors are the signal
	h := crc32.New(castagnoli)
	n, err := io.Copy(h, f)
	if err != nil {
		return 0, 0, err
	}
	return h.Sum32(), n, nil
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	defer func() { _ = d.Close() }() // the Sync below carries the durability
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
