package wal

import "graphtinker/internal/metrics"

// Recorder bundles the log's observability instruments on the race-clean
// internal/metrics layer. All fields are safe for concurrent use; a nil
// *Recorder is a valid no-op sink.
type Recorder struct {
	// FsyncLatency observes nanoseconds per fsync — the group-commit cost
	// the sync policy trades against durability lag.
	FsyncLatency *metrics.Histogram
	// Fsyncs counts fsync calls that actually hit the disk.
	Fsyncs metrics.Counter
	// AppendedRecords / AppendedOps / AppendedBytes count accepted work.
	AppendedRecords metrics.Counter
	AppendedOps     metrics.Counter
	AppendedBytes   metrics.Counter
	// SegmentBytes gauges the active segment's current size.
	SegmentBytes metrics.Gauge
	// SegmentsCreated / SegmentsPruned count rotation and checkpoint
	// pruning.
	SegmentsCreated metrics.Counter
	SegmentsPruned  metrics.Counter
	// ReplayedRecords / ReplayedOps count recovery replay work.
	ReplayedRecords metrics.Counter
	ReplayedOps     metrics.Counter
	// TruncatedBytes counts bytes discarded by torn-tail truncation on
	// Open.
	TruncatedBytes metrics.Counter
	// SnapshotGCFailures counts stale-snapshot files a checkpoint failed
	// to remove — stuck snapshot GC an operator should investigate.
	SnapshotGCFailures metrics.Counter
}

// NewRecorder builds a recorder with the default bounds.
func NewRecorder() *Recorder {
	return &Recorder{FsyncLatency: metrics.NewHistogram(metrics.LatencyBounds())}
}

// RecorderSnapshot is the JSON form of a Recorder — the "wal" section of
// cmd/gtload's -metrics-out document.
type RecorderSnapshot struct {
	FsyncLatencyNs     metrics.HistogramSnapshot `json:"fsync_latency_ns"`
	Fsyncs             uint64                    `json:"fsyncs"`
	AppendedRecords    uint64                    `json:"appended_records"`
	AppendedOps        uint64                    `json:"appended_ops"`
	AppendedBytes      uint64                    `json:"appended_bytes"`
	SegmentBytes       int64                     `json:"segment_bytes"`
	SegmentsCreated    uint64                    `json:"segments_created"`
	SegmentsPruned     uint64                    `json:"segments_pruned"`
	ReplayedRecords    uint64                    `json:"replayed_records"`
	ReplayedOps        uint64                    `json:"replayed_ops"`
	TruncatedBytes     uint64                    `json:"truncated_bytes"`
	SnapshotGCFailures uint64                    `json:"snapshot_gc_failures"`
}

// Snapshot copies the recorder's state; a nil recorder yields a zero
// snapshot.
func (r *Recorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{}
	}
	return RecorderSnapshot{
		FsyncLatencyNs:     r.FsyncLatency.Snapshot(),
		Fsyncs:             r.Fsyncs.Load(),
		AppendedRecords:    r.AppendedRecords.Load(),
		AppendedOps:        r.AppendedOps.Load(),
		AppendedBytes:      r.AppendedBytes.Load(),
		SegmentBytes:       r.SegmentBytes.Load(),
		SegmentsCreated:    r.SegmentsCreated.Load(),
		SegmentsPruned:     r.SegmentsPruned.Load(),
		ReplayedRecords:    r.ReplayedRecords.Load(),
		ReplayedOps:        r.ReplayedOps.Load(),
		TruncatedBytes:     r.TruncatedBytes.Load(),
		SnapshotGCFailures: r.SnapshotGCFailures.Load(),
	}
}
