package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"graphtinker/internal/core"
)

// tailError reports a segment whose tail could not be validated: a torn or
// corrupt record at goodEnd. Open truncates to goodEnd when the segment is
// the last one; anywhere else it is unrecoverable corruption.
type tailError struct {
	path    string
	goodEnd int64  // byte offset of the last whole valid record's end
	size    int64  // file size when scanned
	nextLSN uint64 // LSN after the last valid record
	reason  string
}

func (e *tailError) Error() string {
	return fmt.Sprintf("wal: %s: %s at byte offset %d: %v", e.path, e.reason, e.goodEnd, ErrCorrupt)
}

func (e *tailError) Unwrap() error { return ErrCorrupt }

// scanSegment validates one segment file, optionally streaming each
// record's decoded ops to fn. It returns the byte offset after the last
// valid record and the next LSN. A torn/corrupt tail is reported as a
// *tailError carrying how much of the file is good.
//
// The payload and ops buffers are reused across records, so fn must not
// retain the slice past its return (every caller partitions or applies in
// place). With fn nil the records are validated without materialising ops
// at all — the allocation-free path Open's integrity scan takes.
func scanSegment(path string, wantFirstLSN uint64, fn func(firstLSN uint64, ops []core.EdgeOp) error) (end int64, nextLSN uint64, records int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: open segment: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only scan; corruption detection is the signal
	st, err := f.Stat()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: stat segment: %w", err)
	}
	size := st.Size()
	le := binary.LittleEndian

	var head [headerSize]byte
	if _, rerr := io.ReadFull(f, head[:]); rerr != nil {
		return 0, 0, 0, &tailError{path: path, goodEnd: 0, size: size, nextLSN: wantFirstLSN, reason: "torn segment header"}
	}
	if le.Uint32(head[0:]) != segMagic {
		return 0, 0, 0, fmt.Errorf("wal: %s: bad magic: %w", path, ErrCorrupt)
	}
	if v := le.Uint16(head[4:]); v != segVersion {
		return 0, 0, 0, fmt.Errorf("wal: %s: unsupported version %d: %w", path, v, ErrCorrupt)
	}
	if got := le.Uint64(head[8:]); got != wantFirstLSN {
		return 0, 0, 0, fmt.Errorf("wal: %s: header LSN %d does not match name LSN %d: %w", path, got, wantFirstLSN, ErrCorrupt)
	}

	end = headerSize
	nextLSN = wantFirstLSN
	var rh [recordHeaderSize]byte
	var payload []byte
	var ops []core.EdgeOp
	var opsOut *[]core.EdgeOp
	if fn != nil {
		opsOut = &ops
	}
	for {
		if _, rerr := io.ReadFull(f, rh[:]); rerr != nil {
			if rerr == io.EOF {
				return end, nextLSN, records, nil
			}
			return 0, 0, 0, &tailError{path: path, goodEnd: end, size: size, nextLSN: nextLSN, reason: "torn record header"}
		}
		plen := le.Uint32(rh[0:])
		crc := le.Uint32(rh[4:])
		if plen < recordMetaSize || plen > recordMetaSize+opSize*MaxRecordOps {
			return 0, 0, 0, &tailError{path: path, goodEnd: end, size: size, nextLSN: nextLSN, reason: fmt.Sprintf("implausible record length %d", plen)}
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		} else {
			payload = payload[:plen]
		}
		if _, rerr := io.ReadFull(f, payload); rerr != nil {
			return 0, 0, 0, &tailError{path: path, goodEnd: end, size: size, nextLSN: nextLSN, reason: "torn record payload"}
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return 0, 0, 0, &tailError{path: path, goodEnd: end, size: size, nextLSN: nextLSN, reason: "record checksum mismatch"}
		}
		firstLSN, count, derr := decodePayloadInto(payload, opsOut)
		if derr != nil {
			return 0, 0, 0, &tailError{path: path, goodEnd: end, size: size, nextLSN: nextLSN, reason: derr.Error()}
		}
		if firstLSN != nextLSN {
			return 0, 0, 0, &tailError{path: path, goodEnd: end, size: size, nextLSN: nextLSN, reason: fmt.Sprintf("record LSN %d, want %d", firstLSN, nextLSN)}
		}
		if fn != nil {
			if err := fn(firstLSN, ops); err != nil {
				return 0, 0, 0, err
			}
		}
		end += recordHeaderSize + int64(plen)
		nextLSN += uint64(count)
		records++
	}
}

// EncodeOps serialises a batch of ops into the WAL record payload format
// (first LSN + count + fixed-width ops). Replication reuses it as the
// wire form for shipped records, so followers decode with the same code
// that validates their own log.
func EncodeOps(firstLSN uint64, ops []core.EdgeOp) []byte {
	return encodePayload(firstLSN, ops)
}

// DecodeOps parses a payload produced by EncodeOps.
func DecodeOps(payload []byte) (firstLSN uint64, ops []core.EdgeOp, err error) {
	return decodePayload(payload)
}

// decodePayload parses a record payload back into its first LSN and
// freshly allocated ops — the public DecodeOps form replication's wire
// path relies on (its callers may retain the slice).
func decodePayload(payload []byte) (uint64, []core.EdgeOp, error) {
	var ops []core.EdgeOp
	firstLSN, _, err := decodePayloadInto(payload, &ops)
	return firstLSN, ops, err
}

// decodePayloadInto validates a record payload and, when out is non-nil,
// decodes its ops into *out reusing the slice's capacity. With out nil it
// only validates (meta bounds, exact length, per-op flags) without
// materialising the ops. Returns the record's first LSN and op count.
func decodePayloadInto(payload []byte, out *[]core.EdgeOp) (uint64, int, error) {
	le := binary.LittleEndian
	if len(payload) < recordMetaSize {
		return 0, 0, errors.New("short record payload")
	}
	firstLSN := le.Uint64(payload[0:])
	count := int(le.Uint32(payload[8:]))
	if count > MaxRecordOps {
		return 0, 0, fmt.Errorf("implausible op count %d", count)
	}
	if want := recordMetaSize + opSize*count; len(payload) != want {
		return 0, 0, fmt.Errorf("payload is %d bytes, want %d for %d ops", len(payload), want, count)
	}
	off := recordMetaSize
	if out == nil {
		for i := 0; i < count; i++ {
			if flags := payload[off]; flags > 1 {
				return 0, 0, fmt.Errorf("op %d: bad flags %#x", i, flags)
			}
			off += opSize
		}
		return firstLSN, count, nil
	}
	ops := (*out)[:0]
	if cap(ops) < count {
		ops = make([]core.EdgeOp, 0, count)
	}
	for i := 0; i < count; i++ {
		flags := payload[off]
		if flags > 1 {
			return 0, 0, fmt.Errorf("op %d: bad flags %#x", i, flags)
		}
		ops = append(ops, core.EdgeOp{
			Edge: core.Edge{
				Src:    le.Uint64(payload[off+1:]),
				Dst:    le.Uint64(payload[off+9:]),
				Weight: floatFrom(le.Uint32(payload[off+17:])),
			},
			Del: flags == 1,
		})
		off += opSize
	}
	*out = ops
	return firstLSN, count, nil
}

// Replay streams the log's ops at or beyond fromLSN, in order, to fn. A
// record straddling fromLSN is applied from its offset — never twice, the
// property that makes snapshot + tail replay idempotent. A torn tail on
// the last segment ends the replay cleanly (Open would truncate it);
// corruption anywhere else returns an error wrapping ErrCorrupt. It
// returns the LSN after the last replayed op.
//
// Segments whose whole LSN range sits below fromLSN — proven by the NEXT
// segment's name carrying a first LSN ≤ fromLSN — are skipped without
// being opened: everything in them is covered by the checkpoint the
// caller is replaying from. (Open already byte-validated every segment;
// Replay's job is only to stream the uncovered tail.)
//
// The ops slice passed to fn is reused between records; fn must not
// retain it past its return.
func Replay(dir string, fromLSN uint64, rec *Recorder, fn func(lsn uint64, ops []core.EdgeOp) error) (uint64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return fromLSN, err
	}
	next := fromLSN
	var prevEnd uint64
	for i, seg := range segs {
		last := i == len(segs)-1
		// Cross-segment continuity: a gap means a middle segment is missing
		// (deleted or lost), and replaying past it would silently skip a
		// run of ops — corruption, not a recoverable tail.
		if i > 0 && seg.firstLSN != prevEnd {
			return next, fmt.Errorf("wal: %s: segment starts at LSN %d but previous segment ends at LSN %d (missing segment?): %w",
				seg.path, seg.firstLSN, prevEnd, ErrCorrupt)
		}
		if !last && segs[i+1].firstLSN <= fromLSN {
			// Every LSN in this segment is below the next segment's first
			// LSN, hence ≤ fromLSN: wholly covered. Skip without opening.
			prevEnd = segs[i+1].firstLSN
			continue
		}
		_, segNext, _, err := scanSegment(seg.path, seg.firstLSN, func(firstLSN uint64, ops []core.EdgeOp) error {
			opsEnd := firstLSN + uint64(len(ops))
			if opsEnd <= fromLSN {
				return nil // wholly before the checkpoint: skip, never re-apply
			}
			if firstLSN < fromLSN {
				ops = ops[fromLSN-firstLSN:] // straddling record: apply the tail only
				firstLSN = fromLSN
			}
			if rec != nil {
				rec.ReplayedRecords.Inc()
				rec.ReplayedOps.Add(uint64(len(ops)))
			}
			if err := fn(firstLSN, ops); err != nil {
				return err
			}
			next = opsEnd
			return nil
		})
		if err != nil {
			var terr *tailError
			if last && errors.As(err, &terr) {
				// Torn tail: everything before it already streamed.
				return next, nil
			}
			return next, err
		}
		if segNext > next && segNext > fromLSN {
			next = segNext
		}
		prevEnd = segNext
	}
	return next, nil
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }

func floatFrom(b uint32) float32 { return math.Float32frombits(b) }
