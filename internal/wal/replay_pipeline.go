package wal

// Pipelined WAL replay. Replay decodes records on the calling goroutine;
// ReplayInto overlaps that decode with shard-partitioned application:
// decoded ops accumulate into a per-shard partition scratch, and once a
// generation fills it is handed to per-shard apply workers while the
// decoder keeps reading the next one. Two part-sets double-buffer the
// pipeline — the decoder fills one while the workers drain the other —
// so the scratch is reused for the whole replay and the steady state
// allocates nothing per record.
//
// Ordering: ops for one source always land in the same shard (the
// partition function is per-src) and each shard's worker consumes its
// channel FIFO in generation order, so the per-(src,dst) apply order of
// the log is preserved — the only order that matters for convergence.

import (
	"sync"

	"graphtinker/internal/core"
)

// ReplayTarget is a shard-partitioned sink for pipelined replay.
// core.Parallel satisfies it directly; single-instance stores adapt with
// a one-shard facade. ApplyShard must tolerate concurrent calls for
// DIFFERENT shards (never the same shard), and must not retain ops — the
// slice is the pipeline's recycled partition scratch.
type ReplayTarget interface {
	NumShards() int
	ShardOf(src uint64) int
	ApplyShard(shard int, ops []core.EdgeOp) (inserted, deleted int)
}

// replayDispatchOps is the generation size: how many decoded ops
// accumulate in the partition scratch before it is handed to the apply
// workers. Big enough to amortize the channel handoff, small enough that
// decode and apply genuinely overlap on multi-record logs.
const replayDispatchOps = 4096

// ReplayInto streams the log's ops at or beyond fromLSN into target,
// partitioned by shard and applied by per-shard workers concurrently with
// the decode. It returns the LSN after the last replayed op, exactly like
// Replay, and is what Session.Recover, OpenDurableStream, and the
// replication follower's catch-up all ride.
func ReplayInto(dir string, fromLSN uint64, rec *Recorder, target ReplayTarget) (uint64, error) {
	n := target.NumShards()
	if n <= 1 {
		// One shard: fan-out buys nothing, apply inline on the decoder.
		return Replay(dir, fromLSN, rec, func(lsn uint64, ops []core.EdgeOp) error {
			target.ApplyShard(0, ops)
			return nil
		})
	}

	// Double-buffered partition scratch: parts[cur] is being filled by the
	// decoder, the other set is owned by the in-flight generation's
	// workers until applyWG drains.
	var parts [2][][]core.EdgeOp
	parts[0] = make([][]core.EdgeOp, n)
	parts[1] = make([][]core.EdgeOp, n)
	chans := make([]chan []core.EdgeOp, n)
	var applyWG sync.WaitGroup  // outstanding per-shard applies of one generation
	var workerWG sync.WaitGroup // worker goroutine lifetimes
	for i := range chans {
		chans[i] = make(chan []core.EdgeOp, 1)
		workerWG.Add(1)
		go func(shard int) {
			defer workerWG.Done()
			for ops := range chans[shard] {
				target.ApplyShard(shard, ops)
				applyWG.Done()
			}
		}(i)
	}

	cur, filled := 0, 0
	dispatch := func() {
		if filled == 0 {
			return
		}
		// The previous generation must be fully applied before its buffers
		// (the set we are about to flip into) can be refilled.
		applyWG.Wait()
		for s, part := range parts[cur] {
			if len(part) > 0 {
				applyWG.Add(1)
				chans[s] <- part
			}
		}
		cur ^= 1
		for s := range parts[cur] {
			parts[cur][s] = parts[cur][s][:0]
		}
		filled = 0
	}

	next, err := Replay(dir, fromLSN, rec, func(lsn uint64, ops []core.EdgeOp) error {
		for _, op := range ops {
			s := target.ShardOf(op.Src)
			parts[cur][s] = append(parts[cur][s], op)
		}
		filled += len(ops)
		if filled >= replayDispatchOps {
			dispatch()
		}
		return nil
	})
	if err == nil {
		dispatch() // final partial generation
	}
	applyWG.Wait()
	for _, ch := range chans {
		close(ch)
	}
	workerWG.Wait()
	return next, err
}
