package wal

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"graphtinker/internal/core"
)

// mockTarget is a ReplayTarget that records per-(src,dst) apply order and
// final weights, hashing srcs across n shards. It checks the pipeline's
// two contracts as it goes: no two concurrent ApplyShard calls for the
// same shard, and every op routed to the shard ShardOf names.
type mockTarget struct {
	n      int
	mu     sync.Mutex
	inUse  []bool
	state  map[[2]uint64]float32 // final weight, deleted = absent
	order  map[[2]uint64][]core.EdgeOp
	errmsg string
}

func newMockTarget(n int) *mockTarget {
	return &mockTarget{
		n:     n,
		inUse: make([]bool, n),
		state: make(map[[2]uint64]float32),
		order: make(map[[2]uint64][]core.EdgeOp),
	}
}

func (m *mockTarget) NumShards() int       { return m.n }
func (m *mockTarget) ShardOf(s uint64) int { return int(s % uint64(m.n)) }
func (m *mockTarget) fail(f string, a ...any) {
	if m.errmsg == "" {
		m.errmsg = fmt.Sprintf(f, a...)
	}
}

func (m *mockTarget) ApplyShard(shard int, ops []core.EdgeOp) (inserted, deleted int) {
	m.mu.Lock()
	if m.inUse[shard] {
		m.fail("concurrent ApplyShard calls for shard %d", shard)
	}
	m.inUse[shard] = true
	m.mu.Unlock()

	m.mu.Lock()
	for _, op := range ops {
		if m.ShardOf(op.Src) != shard {
			m.fail("src %d applied on shard %d, belongs to %d", op.Src, shard, m.ShardOf(op.Src))
		}
		k := [2]uint64{op.Src, op.Dst}
		m.order[k] = append(m.order[k], op)
		if op.Del {
			if _, ok := m.state[k]; ok {
				deleted++
			}
			delete(m.state, k)
		} else {
			if _, ok := m.state[k]; !ok {
				inserted++
			}
			m.state[k] = op.Weight
		}
	}
	m.inUse[shard] = false
	m.mu.Unlock()
	return inserted, deleted
}

// writeLog appends ops in records of recSize and closes the log.
func writeLog(t *testing.T, dir string, ops []core.EdgeOp, recSize int, o Options) {
	t.Helper()
	l, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ops); i += recSize {
		end := i + recSize
		if end > len(ops) {
			end = len(ops)
		}
		if _, err := l.Append(ops[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReplayIntoMatchesSequential(t *testing.T) {
	for _, shards := range []int{1, 3, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			ops := genOps(20000, 11)
			writeLog(t, dir, ops, 257, Options{})

			// The pipelined run under test.
			m := newMockTarget(shards)
			next, err := ReplayInto(dir, 0, nil, m)
			if err != nil {
				t.Fatal(err)
			}
			if m.errmsg != "" {
				t.Fatal(m.errmsg)
			}
			if next != uint64(len(ops)) {
				t.Fatalf("ReplayInto returned LSN %d, want %d", next, len(ops))
			}

			// The op-by-op oracle: same ops folded sequentially.
			state := make(map[[2]uint64]float32)
			order := make(map[[2]uint64][]core.EdgeOp)
			for _, op := range ops {
				k := [2]uint64{op.Src, op.Dst}
				order[k] = append(order[k], op)
				if op.Del {
					delete(state, k)
				} else {
					state[k] = op.Weight
				}
			}
			if len(m.state) != len(state) {
				t.Fatalf("pipelined state has %d edges, oracle %d", len(m.state), len(state))
			}
			for k, w := range state {
				if m.state[k] != w {
					t.Fatalf("edge %v: pipelined %g, oracle %g", k, m.state[k], w)
				}
			}
			// Per-(src,dst) apply order is the replay's only ordering
			// contract; it must survive the fan-out exactly.
			for k, want := range order {
				got := m.order[k]
				if len(got) != len(want) {
					t.Fatalf("key %v: %d ops applied, want %d", k, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("key %v op %d: applied %+v, want %+v", k, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestReplayIntoFromMidLog(t *testing.T) {
	dir := t.TempDir()
	ops := genOps(5000, 13)
	writeLog(t, dir, ops, 100, Options{})
	from := uint64(2350) // mid-record: the straddling record must be sliced

	m := newMockTarget(4)
	next, err := ReplayInto(dir, from, nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if next != uint64(len(ops)) {
		t.Fatalf("next LSN %d, want %d", next, len(ops))
	}
	applied := 0
	for _, seq := range m.order {
		applied += len(seq)
	}
	if applied != len(ops)-int(from) {
		t.Fatalf("applied %d ops from LSN %d, want %d", applied, from, len(ops)-int(from))
	}
}

// TestReplaySkipsCoveredSegments pins the segment-skip optimisation by
// construction: segments wholly below fromLSN are corrupted on disk, so
// the only way the tail replay can succeed is by never opening them.
func TestReplaySkipsCoveredSegments(t *testing.T) {
	dir := t.TempDir()
	ops := genOps(6000, 17)
	// Tiny segments: ~21 bytes/op, so 4 KiB rolls every ~190 ops.
	writeLog(t, dir, ops, 64, Options{SegmentBytes: 4096})

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("only %d segments; the skip test needs several", len(segs))
	}
	// Checkpoint position: the first LSN of the second-to-last segment.
	// Every segment before it is wholly covered.
	from := segs[len(segs)-2].firstLSN

	// Trash the bodies of all covered segments (keep the 16-byte header's
	// magic so an accidental open fails on content, deterministically).
	for _, seg := range segs[:len(segs)-2] {
		raw, err := os.ReadFile(seg.path)
		if err != nil {
			t.Fatal(err)
		}
		for i := headerSize; i < len(raw); i++ {
			raw[i] ^= 0xa5
		}
		if err := os.WriteFile(seg.path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Replay from the checkpoint: must succeed without touching the
	// corrupted segments, and deliver exactly the tail.
	var got []core.EdgeOp
	next, err := Replay(dir, from, nil, func(lsn uint64, rec []core.EdgeOp) error {
		got = append(got, rec...)
		return nil
	})
	if err != nil {
		t.Fatalf("tail replay opened a covered segment: %v", err)
	}
	if next != uint64(len(ops)) {
		t.Fatalf("next LSN %d, want %d", next, len(ops))
	}
	if want := ops[from:]; len(got) != len(want) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(want))
	}

	// A full replay MUST open them — and fail. This is the proof the
	// segments really are corrupt, i.e. the success above came from the
	// skip, not from luck.
	if _, err := Replay(dir, 0, nil, func(uint64, []core.EdgeOp) error { return nil }); err == nil {
		t.Fatal("full replay over corrupted covered segments succeeded; skip test proves nothing")
	}
}

// TestReplayIntoAllocs pins the steady-state allocation behaviour the
// reusable partition scratch exists for: replaying thousands of records
// must cost a bounded, record-count-independent number of allocations.
func TestReplayIntoAllocs(t *testing.T) {
	dir := t.TempDir()
	ops := genOps(40000, 19)
	writeLog(t, dir, ops, 20, Options{}) // 2000 records

	m := &sinkTarget{n: 4, counts: make([]int, 4)}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := ReplayInto(dir, 0, nil, m); err != nil {
			t.Fatal(err)
		}
	})
	// Fixed costs: file opens, worker goroutines, channels, and the
	// partition scratch reaching its high-water mark — but nothing per
	// record. 2000 records at even one alloc each would blow far past
	// this bound.
	if allocs > 400 {
		t.Fatalf("ReplayInto of 2000 records cost %.0f allocs; per-record allocation is back", allocs)
	}
	total := 0
	for _, c := range m.counts {
		total += c
	}
	if total != 4*len(ops) { // warm-up + 3 measured runs
		t.Fatalf("sink saw %d ops across 4 runs, want %d", total, 4*len(ops))
	}
}

// sinkTarget applies by counting — zero allocations, so the allocs test
// measures the pipeline alone.
type sinkTarget struct {
	n      int
	counts []int
}

func (s *sinkTarget) NumShards() int       { return s.n }
func (s *sinkTarget) ShardOf(v uint64) int { return int(v % uint64(s.n)) }
func (s *sinkTarget) ApplyShard(shard int, ops []core.EdgeOp) (int, int) {
	s.counts[shard] += len(ops)
	return len(ops), 0
}

func BenchmarkReplayInto(b *testing.B) {
	dir := b.TempDir()
	ops := genOps(40000, 23)
	l, err := Open(dir, Options{SyncInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < len(ops); i += 512 {
		end := i + 512
		if end > len(ops) {
			end = len(ops)
		}
		if _, err := l.Append(ops[i:end]); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := newMockTarget(4)
		if _, err := ReplayInto(dir, 0, nil, m); err != nil {
			b.Fatal(err)
		}
	}
}
