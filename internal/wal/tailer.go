package wal

// Tailer: a blocking reader over the live log, the shipping side of
// WAL-based replication. A tailer streams whole records from a given LSN
// — slicing a record that straddles its start position, exactly like
// Replay — and, once it reaches the durable frontier, blocks until the
// next fsync publishes more. It never reads past DurableLSN, so a
// follower can only ever learn state the primary would itself recover
// after a crash; flushed-but-unsynced bytes sitting in the segment file
// are invisible to it.
//
// Rotation handoff: records are LSN-contiguous across segments, so when
// a tailer hits EOF at a record boundary with the durable frontier ahead
// of it, the next record lives in the segment named after its own next
// LSN. Retention: each open tailer registers a low-water mark with the
// log; Prune clamps to the minimum mark, so a slow follower's unread
// tail is never deleted out from under it (at the cost of unbounded log
// growth until the tailer advances or closes).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"graphtinker/internal/core"
)

// ErrTailerStopped is returned by Next when the caller's stop channel
// closes before the next record becomes durable.
var ErrTailerStopped = errors.New("wal: tailer stopped")

// ErrTailPruned reports a tailer start position whose segment has already
// been pruned — the caller must bootstrap from a snapshot instead.
var ErrTailPruned = errors.New("wal: requested LSN already pruned")

// Tailer streams records from one log position onward. Not safe for
// concurrent use; each follower connection owns its own tailer.
type Tailer struct {
	l        *Log
	readerID uint64
	next     uint64 // LSN of the next op to deliver
	f        *os.File
	off      int64  // read offset in f
	segFirst uint64 // first LSN of the open segment
	segNext  uint64 // LSN after the last record read (or skipped) in f
	closed   bool
	hdr      [recordHeaderSize]byte
	payload  []byte // reused payload buffer
}

// NewTailer opens a tailer positioned at fromLSN. It fails with
// ErrTailPruned when the segment holding fromLSN is gone, and with an
// out-of-range error when fromLSN is beyond the end of the log. The
// returned tailer pins segments at or above fromLSN against Prune until
// it advances past them or closes.
func (l *Log) NewTailer(fromLSN uint64) (*Tailer, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if fromLSN > l.nextLSN {
		return nil, fmt.Errorf("wal: tailer at LSN %d but log ends at %d", fromLSN, l.nextLSN)
	}
	// Registration and the pruned-floor check share one critical section
	// with Prune, so a segment cannot vanish between the check and the
	// pin taking effect.
	segs, err := listSegments(l.dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 || segs[0].firstLSN > fromLSN {
		return nil, fmt.Errorf("wal: tailer at LSN %d: %w", fromLSN, ErrTailPruned)
	}
	l.readerSeq++
	id := l.readerSeq
	l.readers[id] = fromLSN
	return &Tailer{l: l, readerID: id, next: fromLSN}, nil
}

// Position returns the LSN of the next op the tailer will deliver.
func (t *Tailer) Position() uint64 { return t.next }

// Close releases the tailer's retention pin and file handle. Idempotent.
func (t *Tailer) Close() error {
	if t.closed {
		return nil
	}
	t.closed = true
	t.l.mu.Lock()
	delete(t.l.readers, t.readerID)
	t.l.mu.Unlock()
	if t.f != nil {
		err := t.f.Close()
		t.f = nil
		return err
	}
	return nil
}

// Next returns the next durable record at or past the tailer's position,
// sliced so no op below it is re-delivered. It blocks until the log's
// durable frontier moves past the position, the stop channel closes
// (ErrTailerStopped), or the log closes with nothing left to drain
// (ErrClosed). The returned ops share an internal buffer valid until the
// following Next call.
func (t *Tailer) Next(stop <-chan struct{}) (firstLSN uint64, ops []core.EdgeOp, err error) {
	if t.closed {
		return 0, nil, ErrTailerStopped
	}
	for {
		// Wait for the durable frontier to pass our position. A closed log
		// still drains: records below the frontier stay readable.
		if err := t.waitDurable(stop); err != nil {
			return 0, nil, err
		}
		lsn, rec, err := t.readRecord()
		if err != nil {
			return 0, nil, err
		}
		if rec == nil {
			continue // skipped a record wholly below the start position
		}
		t.l.mu.Lock()
		t.l.readers[t.readerID] = t.next
		t.l.mu.Unlock()
		return lsn, rec, nil
	}
}

func (t *Tailer) waitDurable(stop <-chan struct{}) error {
	for {
		if t.l.durable.Load() > t.next {
			return nil
		}
		t.l.mu.Lock()
		if t.l.durable.Load() > t.next {
			t.l.mu.Unlock()
			return nil
		}
		if t.l.closed {
			t.l.mu.Unlock()
			return ErrClosed
		}
		ch := t.l.tailNotify
		t.l.mu.Unlock()
		select {
		case <-ch:
		case <-stop:
			return ErrTailerStopped
		}
	}
}

// readRecord reads the record at the current offset, handling initial
// positioning, skip-past records below the start position, and segment
// rotation. It returns (0, nil, nil) when it consumed a record wholly
// below the tailer's position. Only called when durable > t.next, so the
// record containing t.next is fully flushed somewhere on disk.
func (t *Tailer) readRecord() (uint64, []core.EdgeOp, error) {
	if t.f == nil {
		if err := t.openSegmentFor(t.next); err != nil {
			return 0, nil, err
		}
	}
	if _, err := t.f.ReadAt(t.hdr[:], t.off); err != nil {
		if err == io.EOF {
			// Record boundary EOF with durable ahead: the next record lives
			// in the segment named after our next LSN (rotation handoff).
			if cerr := t.f.Close(); cerr != nil {
				return 0, nil, fmt.Errorf("wal: tailer rotate: %w", cerr)
			}
			t.f = nil
			if err := t.openSegmentFor(t.next); err != nil {
				return 0, nil, err
			}
			if _, err := t.f.ReadAt(t.hdr[:], t.off); err != nil {
				return 0, nil, fmt.Errorf("wal: tailer: read header after rotation: %w", err)
			}
		} else {
			return 0, nil, fmt.Errorf("wal: tailer: read header: %w", err)
		}
	}
	le := binary.LittleEndian
	plen := le.Uint32(t.hdr[0:])
	crc := le.Uint32(t.hdr[4:])
	if plen < recordMetaSize || plen > recordMetaSize+opSize*MaxRecordOps {
		return 0, nil, fmt.Errorf("wal: tailer: implausible record length %d at %s offset %d: %w",
			plen, t.f.Name(), t.off, ErrCorrupt)
	}
	if cap(t.payload) < int(plen) {
		t.payload = make([]byte, plen)
	}
	payload := t.payload[:plen]
	if _, err := t.f.ReadAt(payload, t.off+recordHeaderSize); err != nil {
		return 0, nil, fmt.Errorf("wal: tailer: read payload below durable frontier: %w", err)
	}
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, nil, fmt.Errorf("wal: tailer: record checksum mismatch at %s offset %d: %w",
			t.f.Name(), t.off, ErrCorrupt)
	}
	firstLSN, ops, derr := decodePayload(payload)
	if derr != nil {
		return 0, nil, fmt.Errorf("wal: tailer: %v: %w", derr, ErrCorrupt)
	}
	if firstLSN != t.segNext {
		return 0, nil, fmt.Errorf("wal: tailer: record LSN %d, want %d: %w", firstLSN, t.segNext, ErrCorrupt)
	}
	t.off += recordHeaderSize + int64(plen)
	end := firstLSN + uint64(len(ops))
	t.segNext = end
	if end <= t.next {
		return 0, nil, nil // wholly before the start position: skip
	}
	if firstLSN < t.next {
		ops = ops[t.next-firstLSN:] // straddling record: deliver the tail only
		firstLSN = t.next
	}
	t.next = end
	return firstLSN, ops, nil
}

// openSegmentFor opens the segment holding lsn and positions the read
// offset at its first record (skipping happens record-by-record in
// readRecord, which validates LSN continuity as it goes).
func (t *Tailer) openSegmentFor(lsn uint64) error {
	segs, err := listSegments(t.l.dir)
	if err != nil {
		return err
	}
	var seg *segInfo
	for i := range segs {
		if segs[i].firstLSN <= lsn {
			seg = &segs[i]
		} else {
			break
		}
	}
	if seg == nil {
		return fmt.Errorf("wal: tailer at LSN %d: %w", lsn, ErrTailPruned)
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: tailer: %w", err)
	}
	var head [headerSize]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		_ = f.Close() // abandoning the segment; the header error is the signal
		return fmt.Errorf("wal: tailer: %s: torn segment header below durable frontier: %w", seg.path, ErrCorrupt)
	}
	le := binary.LittleEndian
	if le.Uint32(head[0:]) != segMagic || le.Uint16(head[4:]) != segVersion {
		_ = f.Close()
		return fmt.Errorf("wal: tailer: %s: bad segment header: %w", seg.path, ErrCorrupt)
	}
	if got := le.Uint64(head[8:]); got != seg.firstLSN {
		_ = f.Close()
		return fmt.Errorf("wal: tailer: %s: header LSN %d does not match name LSN %d: %w",
			seg.path, got, seg.firstLSN, ErrCorrupt)
	}
	t.f = f
	t.off = headerSize
	t.segFirst = seg.firstLSN
	t.segNext = seg.firstLSN
	return nil
}
