package wal

import (
	"errors"
	"testing"
	"time"

	"graphtinker/internal/core"
)

// collectTailer drains n ops from a tailer, copying out of its reused
// buffer, failing the test if Next errors or stalls past the deadline.
func collectTailer(t *testing.T, tl *Tailer, n int, stop <-chan struct{}) []core.EdgeOp {
	t.Helper()
	type result struct {
		ops []core.EdgeOp
		err error
	}
	done := make(chan result, 1)
	go func() {
		var got []core.EdgeOp
		for len(got) < n {
			_, ops, err := tl.Next(stop)
			if err != nil {
				done <- result{got, err}
				return
			}
			got = append(got, append([]core.EdgeOp(nil), ops...)...)
		}
		done <- result{got, nil}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatalf("tailer: %v after %d ops", r.err, len(r.ops))
		}
		return r.ops
	case <-time.After(10 * time.Second):
		t.Fatal("tailer stalled")
		return nil
	}
}

func opsEqual(a, b []core.EdgeOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTailerStreamsAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force several rotations mid-stream.
	l, err := Open(dir, Options{SegmentBytes: 2048, SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Crash()
	ops := genOps(1500, 21)
	for i := 0; i < len(ops); i += 75 {
		if _, err := l.Append(ops[i : i+75]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if n, _ := l.Segments(); n < 3 {
		t.Fatalf("want >=3 segments for a rotation test, got %d", n)
	}
	tl, err := l.NewTailer(0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tl.Close() }()
	got := collectTailer(t, tl, len(ops), nil)
	if !opsEqual(got, ops) {
		t.Fatal("tailed ops differ from appended ops")
	}
	if tl.Position() != uint64(len(ops)) {
		t.Fatalf("Position() = %d, want %d", tl.Position(), len(ops))
	}
}

func TestTailerStartMidRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncInterval: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Crash()
	ops := genOps(100, 22)
	// One 100-op record; start the tailer inside it.
	if _, err := l.Append(ops); err != nil {
		t.Fatal(err)
	}
	const from = 37
	tl, err := l.NewTailer(from)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tl.Close() }()
	lsn, rec, err := tl.Next(nil)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != from {
		t.Fatalf("first delivery at LSN %d, want %d", lsn, from)
	}
	if !opsEqual(rec, ops[from:]) {
		t.Fatal("straddling record not sliced to the tailer position")
	}
}

func TestTailerBlocksUntilDurable(t *testing.T) {
	dir := t.TempDir()
	// Barrier-only sync: appends are written but not durable, so the
	// tailer must not see them until Sync.
	l, err := Open(dir, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Crash()
	ops := genOps(50, 23)
	if _, err := l.Append(ops); err != nil {
		t.Fatal(err)
	}
	tl, err := l.NewTailer(0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tl.Close() }()

	delivered := make(chan []core.EdgeOp, 1)
	go func() {
		_, rec, err := tl.Next(nil)
		if err != nil {
			delivered <- nil
			return
		}
		delivered <- append([]core.EdgeOp(nil), rec...)
	}()
	select {
	case <-delivered:
		t.Fatal("tailer delivered ops that were never fsynced")
	case <-time.After(100 * time.Millisecond):
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	select {
	case rec := <-delivered:
		if !opsEqual(rec, ops) {
			t.Fatal("delivered ops differ after sync")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tailer did not wake after Sync")
	}
}

func TestTailerStopAndLogClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncInterval: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(genOps(10, 24)); err != nil {
		t.Fatal(err)
	}
	tl, err := l.NewTailer(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tl.Next(nil); err != nil {
		t.Fatal(err)
	}
	// At the tail now: a closed stop channel unblocks with ErrTailerStopped.
	stop := make(chan struct{})
	close(stop)
	if _, _, err := tl.Next(stop); !errors.Is(err, ErrTailerStopped) {
		t.Fatalf("Next with closed stop = %v, want ErrTailerStopped", err)
	}
	// Closing the log unblocks a parked tailer with ErrClosed.
	errCh := make(chan error, 1)
	go func() {
		_, _, err := tl.Next(nil)
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Next after log close = %v, want ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tailer did not wake on log close")
	}
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTailerRetentionGuard(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 2048, SyncInterval: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Crash()
	ops := genOps(1200, 25)
	for i := 0; i < len(ops); i += 60 {
		if _, err := l.Append(ops[i : i+60]); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := l.Segments()
	if before < 3 {
		t.Fatalf("want >=3 segments, got %d", before)
	}
	tl, err := l.NewTailer(0)
	if err != nil {
		t.Fatal(err)
	}
	// A reader parked at LSN 0 pins everything: Prune must be a no-op.
	removed, err := l.Prune(l.NextLSN())
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("Prune removed %d segments pinned by a tailer", removed)
	}
	// Drain half the stream; the reader's mark advances, releasing the
	// segments wholly below it.
	_ = collectTailer(t, tl, 600, nil)
	removedMid, err := l.Prune(l.NextLSN())
	if err != nil {
		t.Fatal(err)
	}
	// The tailer can still read the rest even after the partial prune.
	rest := collectTailer(t, tl, len(ops)-600, nil)
	if !opsEqual(rest, ops[600:]) {
		t.Fatal("tailed tail differs after prune")
	}
	if err := tl.Close(); err != nil {
		t.Fatal(err)
	}
	removedAfter, err := l.Prune(l.NextLSN())
	if err != nil {
		t.Fatal(err)
	}
	after, _ := l.Segments()
	if removedMid+removedAfter == 0 {
		t.Fatal("Prune removed nothing even after the tailer advanced and closed")
	}
	if after != 1 {
		t.Fatalf("want 1 segment after full prune, got %d", after)
	}
}

func TestTailerPrunedStart(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 2048, SyncInterval: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Crash()
	ops := genOps(1200, 26)
	for i := 0; i < len(ops); i += 60 {
		if _, err := l.Append(ops[i : i+60]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Prune(l.NextLSN()); err != nil {
		t.Fatal(err)
	}
	if _, err := l.NewTailer(0); !errors.Is(err, ErrTailPruned) {
		t.Fatalf("NewTailer(0) after prune = %v, want ErrTailPruned", err)
	}
	if _, err := l.NewTailer(l.NextLSN() + 1); err == nil {
		t.Fatal("NewTailer beyond the log end must fail")
	}
	// The log's current tail is still reachable.
	tl, err := l.NewTailer(l.NextLSN())
	if err != nil {
		t.Fatal(err)
	}
	_ = tl.Close()
}

func TestTailerInitialLSN(t *testing.T) {
	dir := t.TempDir()
	// A follower bootstrapped from a snapshot at LSN 5000 opens an empty
	// log positioned there; tailing and replay both start at that floor.
	l, err := Open(dir, Options{SyncInterval: 0, InitialLSN: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if l.NextLSN() != 5000 {
		t.Fatalf("NextLSN = %d, want 5000", l.NextLSN())
	}
	ops := genOps(40, 27)
	if _, err := l.Append(ops); err != nil {
		t.Fatal(err)
	}
	tl, err := l.NewTailer(5000)
	if err != nil {
		t.Fatal(err)
	}
	got := collectTailer(t, tl, len(ops), nil)
	if !opsEqual(got, ops) {
		t.Fatal("tailed ops differ")
	}
	_ = tl.Close()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen ignores InitialLSN once segments exist.
	l2, err := Open(dir, Options{SyncInterval: 0, InitialLSN: 9999})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Crash()
	if l2.NextLSN() != 5040 {
		t.Fatalf("reopened NextLSN = %d, want 5040", l2.NextLSN())
	}
	got2, next := replayAll(t, dir, 5000)
	if next != 5040 || !opsEqual(got2, ops) {
		t.Fatalf("replay from InitialLSN floor: next=%d", next)
	}
}

// TestReplayResumeMidSegment pins Replay's mid-segment resume behaviour —
// the path the Tailer's bootstrap depends on. Records are 50 ops each, so
// resuming at LSN 125 must slice record [100,150) and skip two records,
// with exact record/op counts on the recorder.
func TestReplayResumeMidSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4096, SyncInterval: 0})
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(600, 28)
	for i := 0; i < len(ops); i += 50 {
		if _, err := l.Append(ops[i : i+50]); err != nil {
			t.Fatal(err)
		}
	}
	segBoundaries, _ := l.Segments()
	if segBoundaries < 2 {
		t.Fatalf("want >=2 segments, got %d", segBoundaries)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		from        uint64
		wantRecords uint64 // records delivered to fn (straddler included)
	}{
		{from: 125, wantRecords: 10}, // mid-record, mid-segment: [100,150) sliced
		{from: 150, wantRecords: 9},  // record boundary mid-segment
		{from: 599, wantRecords: 1},  // last op only
		{from: 600, wantRecords: 0},  // at the end: nothing to replay
	}
	for _, tc := range cases {
		rec := NewRecorder()
		var got []core.EdgeOp
		next, err := Replay(dir, tc.from, rec, func(lsn uint64, rops []core.EdgeOp) error {
			if lsn != tc.from+uint64(len(got)) {
				t.Fatalf("from=%d: record at LSN %d, want %d", tc.from, lsn, tc.from+uint64(len(got)))
			}
			got = append(got, rops...)
			return nil
		})
		if err != nil {
			t.Fatalf("from=%d: %v", tc.from, err)
		}
		if next != 600 {
			t.Fatalf("from=%d: next=%d, want 600", tc.from, next)
		}
		if !opsEqual(got, ops[tc.from:]) {
			t.Fatalf("from=%d: replayed ops differ", tc.from)
		}
		snap := rec.Snapshot()
		if snap.ReplayedRecords != tc.wantRecords {
			t.Fatalf("from=%d: ReplayedRecords=%d, want %d", tc.from, snap.ReplayedRecords, tc.wantRecords)
		}
		if snap.ReplayedOps != uint64(600-tc.from) {
			t.Fatalf("from=%d: ReplayedOps=%d, want %d", tc.from, snap.ReplayedOps, 600-tc.from)
		}
	}
}

func TestEncodeDecodeOpsRoundTrip(t *testing.T) {
	ops := genOps(97, 29)
	payload := EncodeOps(4242, ops)
	first, got, err := DecodeOps(payload)
	if err != nil {
		t.Fatal(err)
	}
	if first != 4242 || !opsEqual(got, ops) {
		t.Fatalf("round trip: first=%d", first)
	}
	if _, _, err := DecodeOps(payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated payload must fail to decode")
	}
}
