// Package wal is a segmented, checksummed write-ahead log of edge
// operations — the durability substrate under the streaming ingestion
// pipeline and the session batch path.
//
// Model: the log is an ordered sequence of edge ops, numbered by LSN
// (log sequence number = the global index of an op in the stream). Each
// Append writes one record holding a contiguous op run [firstLSN,
// firstLSN+count). Records carry a CRC32-C over their payload, so torn or
// corrupt tails are detected and truncated on Open; a record is either
// wholly durable or not in the log at all. Because appends happen in
// stream order, the log's content is always an exact prefix of the
// acknowledged op stream — the invariant recovery and the chaos
// differential tests lean on.
//
// Durability: Append buffers; data is durable only after fsync. The sync
// policy is group commit — SyncInterval > 0 runs a background flusher so
// appends amortize one fsync per interval, SyncInterval == 0 syncs every
// append, and SyncInterval < 0 syncs only on explicit Sync/Close (callers
// then sync at their acknowledgment barrier).
//
// Layout: dir/<firstLSN as %016x>.wal segments, rotated at SegmentBytes;
// Prune removes segments wholly below a checkpoint LSN.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphtinker/internal/core"
	"graphtinker/internal/faultinject"
)

const (
	segMagic   = uint32(0x4754574c) // "GTWL"
	segVersion = uint16(1)
	// headerSize is the segment header: magic u32, version u16, reserved
	// u16, firstLSN u64.
	headerSize = 16
	// recordHeaderSize prefixes every record: payload length u32, CRC32-C
	// of the payload u32.
	recordHeaderSize = 8
	// recordMetaSize leads every payload: firstLSN u64, op count u32.
	recordMetaSize = 12
	// opSize is one encoded op: flags u8, src u64, dst u64, weight u32.
	opSize = 21

	segSuffix = ".wal"
)

// DefaultSegmentBytes is the default rotation threshold.
const DefaultSegmentBytes = 16 << 20

// MaxRecordOps bounds ops per record; callers split larger appends. The
// bound keeps replay allocations sane in the face of corrupt length
// fields.
const MaxRecordOps = 1 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCorrupt reports corruption that torn-tail truncation cannot repair —
// a bad record in the interior of the log (not the last segment's tail).
var ErrCorrupt = errors.New("wal: corrupt segment")

// ErrFailed reports a log whose tail may be torn by an earlier failed
// write. Appending past a torn tail would bury the tear in the interior of
// the segment, turning a recoverable truncation into unrecoverable
// corruption — so once a write may have landed partially, the log refuses
// further appends. Recovery path: Close (or Crash) and Open again; Open
// truncates the tear.
var ErrFailed = errors.New("wal: log failed (possibly torn tail); reopen to recover")

// Options configures a log; zero values select the defaults.
type Options struct {
	// SegmentBytes is the rotation threshold (default 16 MiB).
	SegmentBytes int64
	// SyncInterval selects the group-commit policy: 0 syncs every append,
	// > 0 runs a background flusher at that period, < 0 syncs only on
	// explicit Sync/Close.
	SyncInterval time.Duration
	// InitialLSN positions an empty log's first segment at this LSN — a
	// replication follower bootstrapping from a snapshot at LSN n starts
	// its log at n, keeping the manifest↔log continuity invariant without
	// holding the [0, n) prefix. Ignored when the directory already holds
	// segments.
	InitialLSN uint64
	// Recorder, when non-nil, receives fsync-latency/segment-byte/replay
	// telemetry.
	Recorder *Recorder
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	return o
}

// Log is an open write-ahead log. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options
	rec  *Recorder

	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	segStart uint64 // first LSN of the current segment
	segBytes int64
	nextLSN  uint64
	encBuf   []byte // record staging buffer, reused across appends (under mu)
	dirty    bool
	closed   bool
	failed   bool // a write may have landed partially; appends refused

	// durable is the LSN after the last op covered by a successful
	// flush+fsync — the position tailers may read up to. It always sits on
	// a record boundary (syncs cover whole records). Written under mu,
	// read lock-free by tailers.
	durable atomic.Uint64
	// tailNotify is closed and replaced (under mu) whenever durable
	// advances or the log closes, waking blocked tailers.
	tailNotify chan struct{}
	// readers maps registered reader ids to their low-water LSN: Prune
	// never removes a segment holding records at or above any mark, so a
	// tailer's unread tail cannot be deleted out from under it.
	readers   map[uint64]uint64
	readerSeq uint64

	stop, done chan struct{} // background flusher lifecycle (nil when none)
}

// Open opens (or creates) the log in dir, scanning existing segments to
// validate checksums, truncate any torn tail on the last segment, and
// position the next append after the last durable record.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{
		dir:        dir,
		opts:       opts,
		rec:        opts.Recorder,
		tailNotify: make(chan struct{}),
		readers:    make(map[uint64]uint64),
	}

	// Validate every segment; only the last may have a torn tail. Segments
	// must also be LSN-contiguous — each one starts exactly where the
	// previous ends — or a missing middle segment would silently skip a run
	// of ops during recovery.
	recreated := false
	for i, seg := range segs {
		last := i == len(segs)-1
		if i > 0 && seg.firstLSN != l.nextLSN {
			return nil, fmt.Errorf("wal: %s: segment starts at LSN %d but previous segment ends at LSN %d (missing segment?): %w",
				seg.path, seg.firstLSN, l.nextLSN, ErrCorrupt)
		}
		end, next, _, err := scanSegment(seg.path, seg.firstLSN, nil)
		if err != nil {
			if !last {
				return nil, err
			}
			var serr *tailError
			if !errors.As(err, &serr) {
				return nil, err
			}
			if serr.goodEnd < headerSize {
				// The segment header itself is torn (crash between segment
				// creation and the header write during rotation). Merely
				// truncating would leave a headerless file that appends
				// extend and the next Open rejects as corrupt — recreate
				// the segment so a valid header precedes any record.
				if err := l.openSegmentLocked(seg.firstLSN); err != nil {
					return nil, err
				}
				if l.rec != nil {
					l.rec.TruncatedBytes.Add(uint64(serr.size))
				}
				l.nextLSN = seg.firstLSN
				recreated = true
				break
			}
			// Torn tail: truncate back to the last whole record.
			if terr := os.Truncate(seg.path, serr.goodEnd); terr != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, terr)
			}
			if l.rec != nil {
				l.rec.TruncatedBytes.Add(uint64(serr.size - serr.goodEnd))
			}
			end, next = serr.goodEnd, serr.nextLSN
		}
		l.nextLSN = next
		if last {
			l.segStart = seg.firstLSN
			l.segBytes = end
		}
	}

	if len(segs) == 0 {
		if err := l.openSegmentLocked(opts.InitialLSN); err != nil {
			return nil, err
		}
		l.nextLSN = opts.InitialLSN
	} else if !recreated {
		last := segs[len(segs)-1]
		f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: reopen %s: %w", last.path, err)
		}
		if _, err := f.Seek(l.segBytes, 0); err != nil {
			_ = f.Close() // abandoning reopen; the seek error is the signal
			return nil, fmt.Errorf("wal: seek %s: %w", last.path, err)
		}
		l.f = f
		l.bw = bufio.NewWriterSize(f, 1<<16)
	}

	// Everything recovered from disk already survived at least one process
	// lifetime; tailers may ship it immediately.
	l.durable.Store(l.nextLSN)

	if opts.SyncInterval > 0 {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.runFlusher()
	}
	return l, nil
}

// openSegmentLocked creates and switches to a fresh segment whose first
// LSN is firstLSN. Caller holds l.mu (or is initializing).
func (l *Log) openSegmentLocked(firstLSN uint64) error {
	path := filepath.Join(l.dir, segName(firstLSN))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var head [headerSize]byte
	le := binary.LittleEndian
	le.PutUint32(head[0:], segMagic)
	le.PutUint16(head[4:], segVersion)
	le.PutUint64(head[8:], firstLSN)
	if _, err := f.Write(head[:]); err != nil {
		_ = f.Close() // abandoning the segment; the write error is the signal
		return fmt.Errorf("wal: segment header: %w", err)
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)
	l.segStart = firstLSN
	l.segBytes = headerSize
	if l.rec != nil {
		l.rec.SegmentsCreated.Inc()
	}
	return nil
}

func segName(firstLSN uint64) string { return fmt.Sprintf("%016x%s", firstLSN, segSuffix) }

// NextLSN returns the LSN the next appended op will receive — equivalently
// the number of ops the log has accepted so far.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Append writes one record holding ops (in order) and returns the first
// op's LSN. The record is buffered; it is durable once Sync (or the group
// commit flusher, or a 0 SyncInterval) has fsynced past it. Appends larger
// than MaxRecordOps are split into multiple records. The ops slice is
// only read during the call — callers may hand in a reused buffer.
//
//gtlint:noretain ops
func (l *Log) Append(ops []core.EdgeOp) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed {
		return 0, ErrFailed
	}
	first := l.nextLSN
	for len(ops) > 0 {
		n := len(ops)
		if n > MaxRecordOps {
			n = MaxRecordOps
		}
		//gtlint:ignore lockhold group commit: rotation fsyncs the old segment under l.mu so appends serialized behind it ride the same barrier
		if err := l.appendRecordLocked(ops[:n]); err != nil {
			return first, err
		}
		ops = ops[n:]
	}
	if l.opts.SyncInterval == 0 {
		//gtlint:ignore lockhold group commit: sync-every-append mode fsyncs under l.mu so concurrent appends batch behind one barrier
		if err := l.syncLocked(); err != nil {
			return first, err
		}
	}
	return first, nil
}

// appendRecordLocked stages header and payload contiguously in the reused
// encode buffer and hands the whole record to the segment writer in one
// write — so appends allocate nothing in steady state and each record
// reaches the buffered writer as a single coalesced span (the group-commit
// window then drains as one large write per flush, not one per field).
//
//gtlint:noretain ops
func (l *Log) appendRecordLocked(ops []core.EdgeOp) error {
	if err := faultinject.Inject("wal/append"); err != nil {
		return err
	}
	recLen := int64(recordHeaderSize + recordMetaSize + opSize*len(ops))
	if l.segBytes > headerSize && l.segBytes+recLen > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if int64(cap(l.encBuf)) < recLen {
		l.encBuf = make([]byte, recLen)
	}
	rec := l.encBuf[:recLen]
	payload := rec[recordHeaderSize:]
	encodePayloadInto(payload, l.nextLSN, ops)
	le := binary.LittleEndian
	le.PutUint32(rec[0:], uint32(len(payload)))
	le.PutUint32(rec[4:], crc32.Checksum(payload, castagnoli))

	if err := faultinject.Inject("wal/append-partial"); err != nil {
		// Simulate a torn write: half the record reaches the file, then
		// the "process dies" from the log's point of view. Flush straight
		// through the buffer so the torn bytes are really in the file.
		torn := rec[:len(rec)/2]
		l.bw.Write(torn)
		_ = l.bw.Flush() // simulating a crash; a flush error only helps the simulation
		l.segBytes += int64(len(torn))
		l.failed = true
		return err
	}

	if _, err := l.bw.Write(rec); err != nil {
		l.failed = true
		return fmt.Errorf("wal: append: %w", err)
	}
	l.segBytes += recLen
	l.nextLSN += uint64(len(ops))
	l.dirty = true
	if l.rec != nil {
		l.rec.AppendedRecords.Inc()
		l.rec.AppendedOps.Add(uint64(len(ops)))
		l.rec.AppendedBytes.Add(uint64(recLen))
		l.rec.SegmentBytes.Set(l.segBytes)
	}
	return nil
}

// rotateLocked syncs and closes the current segment and opens the next.
func (l *Log) rotateLocked() error {
	if err := faultinject.Inject("wal/rotate"); err != nil {
		return err
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	return l.openSegmentLocked(l.nextLSN)
}

// Sync makes every appended record durable: it flushes the buffer and
// fsyncs the current segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	//gtlint:ignore lockhold group commit: the durability barrier holds l.mu so every append that raced in is covered by this fsync
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := faultinject.Inject("wal/fsync"); err != nil {
		return err
	}
	if err := l.bw.Flush(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if !l.dirty {
		l.advanceDurableLocked()
		return nil
	}
	start := time.Now()
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	if l.rec != nil {
		l.rec.FsyncLatency.ObserveDuration(time.Since(start))
		l.rec.Fsyncs.Inc()
	}
	l.advanceDurableLocked()
	return nil
}

// advanceDurableLocked publishes the current append position as durable
// and wakes blocked tailers. Caller holds l.mu after a successful
// flush+fsync (or when nothing was pending).
func (l *Log) advanceDurableLocked() {
	if l.durable.Load() == l.nextLSN {
		return
	}
	l.durable.Store(l.nextLSN)
	close(l.tailNotify)
	l.tailNotify = make(chan struct{})
}

// DurableLSN returns the LSN after the last fsynced op — the position a
// tailer may stream up to. Lock-free.
func (l *Log) DurableLSN() uint64 { return l.durable.Load() }

func (l *Log) runFlusher() {
	defer close(l.done)
	t := time.NewTicker(l.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				// Group commit: one fsync covers every append since the
				// last tick. Errors surface on the next explicit
				// Sync/Append; the flusher itself has no caller to tell.
				//gtlint:ignore lockhold group commit: the periodic flusher's fsync under l.mu is the commit point appends batch behind
				_ = l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Close syncs and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	//gtlint:ignore lockhold shutdown: the final fsync must exclude appends, and closed=true bounds the wait to one barrier
	err := l.syncLocked()
	cerr := l.f.Close()
	close(l.tailNotify) // wake tailers so they observe closed
	l.tailNotify = make(chan struct{})
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
	if err != nil {
		return err
	}
	return cerr
}

// Crash abandons the log the way a killed process would: open buffers are
// discarded (never flushed), nothing is fsynced, and the file handle is
// dropped. Only data that already reached the file survives a subsequent
// Open. Built for the chaos suite; safe (if pointless) in production.
func (l *Log) Crash() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		_ = l.f.Close()     // deliberately without flushing l.bw; errors are part of the crash
		close(l.tailNotify) // wake tailers so they observe the crash
		l.tailNotify = make(chan struct{})
	}
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		<-l.done
	}
}

// Prune removes segments every record of which is below uptoLSN — called
// after a checkpoint at uptoLSN makes the prefix redundant. The segment
// containing uptoLSN (and everything after) is kept, as is any segment
// holding records at or above a registered reader's low-water mark: a
// replication tailer mid-catch-up pins its unread tail in place.
func (l *Log) Prune(uptoLSN uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	for _, mark := range l.readers {
		if mark < uptoLSN {
			uptoLSN = mark
		}
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	for i := 0; i+1 < len(segs); i++ {
		// A segment's records all precede the next segment's firstLSN.
		if segs[i+1].firstLSN > uptoLSN {
			break
		}
		if segs[i].firstLSN == l.segStart {
			break // never remove the active segment
		}
		if err := os.Remove(segs[i].path); err != nil {
			return removed, fmt.Errorf("wal: prune: %w", err)
		}
		removed++
		if l.rec != nil {
			l.rec.SegmentsPruned.Inc()
		}
	}
	return removed, nil
}

// Segments reports the current on-disk segment count (telemetry/tests).
func (l *Log) Segments() (int, error) {
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	return len(segs), nil
}

type segInfo struct {
	path     string
	firstLSN uint64
}

// listSegments returns dir's segments sorted by first LSN.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(name, segSuffix), 16, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		segs = append(segs, segInfo{path: filepath.Join(dir, name), firstLSN: lsn})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// encodePayloadInto serializes one record payload — firstLSN, count, ops —
// into payload, which must be exactly recordMetaSize+opSize*len(ops) long.
// Both slices belong to the caller: payload is typically a reused append
// buffer and ops a recycled sub-batch, so neither may outlive the call.
//
//gtlint:noretain payload,ops
func encodePayloadInto(payload []byte, firstLSN uint64, ops []core.EdgeOp) {
	le := binary.LittleEndian
	le.PutUint64(payload[0:], firstLSN)
	le.PutUint32(payload[8:], uint32(len(ops)))
	off := recordMetaSize
	for _, op := range ops {
		if op.Del {
			payload[off] = 1
		} else {
			payload[off] = 0
		}
		le.PutUint64(payload[off+1:], op.Src)
		le.PutUint64(payload[off+9:], op.Dst)
		le.PutUint32(payload[off+17:], floatBits(op.Weight))
		off += opSize
	}
}

// encodePayload is encodePayloadInto with a fresh buffer (tests and tools).
func encodePayload(firstLSN uint64, ops []core.EdgeOp) []byte {
	payload := make([]byte, recordMetaSize+opSize*len(ops))
	encodePayloadInto(payload, firstLSN, ops)
	return payload
}
