package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphtinker/internal/core"
	"graphtinker/internal/faultinject"
)

// genOps builds a deterministic op stream: mostly inserts, some deletes.
func genOps(n int, seed uint64) []core.EdgeOp {
	ops := make([]core.EdgeOp, n)
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range ops {
		src, dst := next()%512, next()%512
		if next()%5 == 0 {
			ops[i] = core.DeleteOp(src, dst)
		} else {
			ops[i] = core.InsertOp(src, dst, float32(next()%100)/10)
		}
	}
	return ops
}

// replayAll collects every op at or past from.
func replayAll(t *testing.T, dir string, from uint64) ([]core.EdgeOp, uint64) {
	t.Helper()
	var got []core.EdgeOp
	next, err := Replay(dir, from, nil, func(lsn uint64, ops []core.EdgeOp) error {
		if lsn != from+uint64(len(got)) {
			t.Fatalf("replay out of order: record at LSN %d, expected %d", lsn, from+uint64(len(got)))
		}
		got = append(got, ops...)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, next
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(1000, 1)
	for i := 0; i < len(ops); i += 100 {
		lsn, err := l.Append(ops[i : i+100])
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i) {
			t.Fatalf("Append returned LSN %d, want %d", lsn, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, next := replayAll(t, dir, 0)
	if next != 1000 {
		t.Fatalf("next LSN %d, want 1000", next)
	}
	if len(got) != len(ops) {
		t.Fatalf("replayed %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: got %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestReopenContinues(t *testing.T) {
	dir := t.TempDir()
	ops := genOps(600, 2)
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(ops[:300]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.NextLSN(); got != 300 {
		t.Fatalf("NextLSN after reopen = %d, want 300", got)
	}
	if _, err := l2.Append(ops[300:]); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, dir, 0)
	if len(got) != 600 {
		t.Fatalf("replayed %d ops, want 600", len(got))
	}
}

func TestRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder()
	l, err := Open(dir, Options{SegmentBytes: 2048, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(2000, 3)
	for i := 0; i < len(ops); i += 50 {
		if _, err := l.Append(ops[i : i+50]); err != nil {
			t.Fatal(err)
		}
	}
	n, err := l.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("expected rotation to create several segments, have %d", n)
	}
	removed, err := l.Prune(1500)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("Prune removed nothing")
	}
	// Everything from 1500 on must still replay.
	got, next := replayAll(t, dir, 1500)
	if next != 2000 || len(got) != 500 {
		t.Fatalf("after prune: replayed %d ops to LSN %d, want 500 to 2000", len(got), next)
	}
	for i, op := range got {
		if op != ops[1500+i] {
			t.Fatalf("op %d diverged after prune", 1500+i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.SegmentsCreated.Load() == 0 || rec.SegmentsPruned.Load() == 0 {
		t.Fatal("recorder missed segment lifecycle events")
	}
}

func TestReplayFromStraddlingRecord(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(100, 4)
	if _, err := l.Append(ops); err != nil { // one record: LSNs 0..99
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, next := replayAll(t, dir, 37)
	if next != 100 || len(got) != 63 {
		t.Fatalf("straddle replay: %d ops to %d, want 63 to 100", len(got), next)
	}
	for i := range got {
		if got[i] != ops[37+i] {
			t.Fatalf("straddle op %d mismatch", i)
		}
	}
	// Replaying an already-applied suffix yields exactly the same ops
	// (idempotency is the caller's state property; the log must never
	// duplicate or reorder).
	again, _ := replayAll(t, dir, 37)
	if len(again) != len(got) {
		t.Fatalf("second replay yielded %d ops, want %d", len(again), len(got))
	}
}

func TestCrashLosesOnlyUnflushedTail(t *testing.T) {
	dir := t.TempDir()
	// SyncInterval < 0: nothing is flushed until Sync — so a crash after
	// Sync keeps the prefix, and buffered appends after it are lost.
	l, err := Open(dir, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ops := genOps(300, 5)
	if _, err := l.Append(ops[:200]); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(ops[200:]); err != nil {
		t.Fatal(err)
	}
	l.Crash()
	got, next := replayAll(t, dir, 0)
	if next != 200 || len(got) != 200 {
		t.Fatalf("after crash: %d ops to LSN %d, want exactly the synced 200", len(got), next)
	}
	// Reopen resumes at the durable position.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l2.NextLSN() != 200 {
		t.Fatalf("NextLSN after crash+reopen = %d, want 200", l2.NextLSN())
	}
	l2.Close()
}

// lastSegment returns the path of the newest segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

// TestTornTailTruncation is the satellite's torn-tail matrix: mid-record,
// mid-checksum corruption, trailing garbage, empty segment, torn header.
func TestTornTailTruncation(t *testing.T) {
	build := func(t *testing.T, n int) (string, []core.EdgeOp) {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ops := genOps(n, 7)
		for i := 0; i < n; i += 50 {
			if _, err := l.Append(ops[i : i+50]); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return dir, ops
	}

	cases := []struct {
		name    string
		corrupt func(t *testing.T, path string)
		keepLSN uint64 // ops that must survive
	}{
		{
			name: "mid-record", // cut the last record's payload short
			corrupt: func(t *testing.T, path string) {
				st, _ := os.Stat(path)
				if err := os.Truncate(path, st.Size()-10); err != nil {
					t.Fatal(err)
				}
			},
			keepLSN: 150,
		},
		{
			name: "mid-checksum", // flip a payload byte so the CRC fails
			corrupt: func(t *testing.T, path string) {
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				raw[len(raw)-5] ^= 0xff
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			keepLSN: 150,
		},
		{
			name: "trailing-garbage", // random bytes appended after the log
			corrupt: func(t *testing.T, path string) {
				f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
				if err != nil {
					t.Fatal(err)
				}
				f.Write([]byte{1, 2, 3})
				f.Close()
			},
			keepLSN: 200,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, ops := build(t, 200)
			tc.corrupt(t, lastSegment(t, dir))
			l, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open after %s corruption: %v", tc.name, err)
			}
			if got := l.NextLSN(); got != tc.keepLSN {
				t.Fatalf("NextLSN = %d, want %d", got, tc.keepLSN)
			}
			// The log must accept appends after truncation and replay the
			// repaired prefix plus the new tail.
			if _, err := l.Append(ops[tc.keepLSN:]); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			got, next := replayAll(t, dir, 0)
			if next != 200 || uint64(len(got)) != 200 {
				t.Fatalf("after repair: %d ops to %d, want 200", len(got), next)
			}
			for i := range got {
				if got[i] != ops[i] {
					t.Fatalf("op %d diverged after repair", i)
				}
			}
		})
	}

	t.Run("empty-segment", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil { // header-only segment
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open over empty segment: %v", err)
		}
		if l2.NextLSN() != 0 {
			t.Fatalf("NextLSN = %d, want 0", l2.NextLSN())
		}
		l2.Close()
	})

	t.Run("torn-header", func(t *testing.T) {
		dir, ops := build(t, 100)
		// Simulate a crash right after rotation created the new segment:
		// a second segment file with only half a header. Open must rewrite
		// a valid header (not just truncate to zero) — otherwise the
		// appends below land headerless and the second reopen finds an
		// unrecoverably corrupt segment.
		torn := filepath.Join(dir, segName(100))
		if err := os.WriteFile(torn, []byte{0x4c, 0x57}, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open with torn header: %v", err)
		}
		if l.NextLSN() != 100 {
			t.Fatalf("NextLSN = %d, want 100", l.NextLSN())
		}
		more := genOps(50, 8)
		if _, err := l.Append(more); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen after torn-header repair + append: %v", err)
		}
		if l2.NextLSN() != 150 {
			t.Fatalf("NextLSN after reopen = %d, want 150", l2.NextLSN())
		}
		l2.Close()
		got, next := replayAll(t, dir, 0)
		if next != 150 || len(got) != 150 {
			t.Fatalf("after repair: %d ops to %d, want 150", len(got), next)
		}
		for i := range ops {
			if got[i] != ops[i] {
				t.Fatalf("op %d diverged after torn-header repair", i)
			}
		}
		for i := range more {
			if got[100+i] != more[i] {
				t.Fatalf("appended op %d diverged after torn-header repair", i)
			}
		}
	})

	t.Run("missing-middle-segment", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		all := genOps(500, 10)
		for i := 0; i < len(all); i += 50 {
			if _, err := l.Append(all[i : i+50]); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := listSegments(dir)
		if len(segs) < 3 {
			t.Fatalf("need >= 3 segments, have %d", len(segs))
		}
		// Delete a middle segment: recovery must fail loudly, not silently
		// skip the gap's ops and hand back a wrong store.
		if err := os.Remove(segs[1].path); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with missing middle segment: %v, want ErrCorrupt", err)
		}
		if _, err := Replay(dir, 0, nil, func(uint64, []core.EdgeOp) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay with missing middle segment: %v, want ErrCorrupt", err)
		}
	})

	t.Run("interior-corruption-fails", func(t *testing.T) {
		dir, _ := build(t, 200)
		// Corrupt the FIRST record of the only segment, then append more:
		// the damage is no longer at the tail... but single-segment tail
		// truncation would silently drop valid data after it. Force a
		// second segment so the corruption is interior.
		l, err := Open(dir, Options{SegmentBytes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(genOps(500, 9)); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := listSegments(dir)
		if len(segs) < 2 {
			t.Fatalf("need >= 2 segments, have %d", len(segs))
		}
		raw, err := os.ReadFile(segs[0].path)
		if err != nil {
			t.Fatal(err)
		}
		raw[headerSize+recordHeaderSize+3] ^= 0xff
		if err := os.WriteFile(segs[0].path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Open with interior corruption: %v, want ErrCorrupt", err)
		}
		if _, err := Replay(dir, 0, nil, func(uint64, []core.EdgeOp) error { return nil }); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Replay with interior corruption: %v, want ErrCorrupt", err)
		}
	})
}

func TestGroupCommitFlusher(t *testing.T) {
	dir := t.TempDir()
	rec := NewRecorder()
	l, err := Open(dir, Options{SyncInterval: 5 * time.Millisecond, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(genOps(10, 11)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for rec.Fsyncs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if rec.Fsyncs.Load() == 0 {
		t.Fatal("background flusher never synced")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFailpoints(t *testing.T) {
	defer faultinject.Reset()

	t.Run("fsync-error", func(t *testing.T) {
		faultinject.Reset()
		dir := t.TempDir()
		l, err := Open(dir, Options{SyncInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(genOps(5, 12)); err != nil {
			t.Fatal(err)
		}
		if err := faultinject.Set("wal/fsync", "error*1"); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("Sync = %v, want injected error", err)
		}
		if err := l.Sync(); err != nil { // transient: next attempt succeeds
			t.Fatalf("Sync retry = %v", err)
		}
		l.Close()
	})

	t.Run("append-partial-leaves-recoverable-tail", func(t *testing.T) {
		faultinject.Reset()
		dir := t.TempDir()
		l, err := Open(dir, Options{SyncInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		ops := genOps(100, 13)
		if _, err := l.Append(ops[:50]); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := faultinject.Set("wal/append-partial", "partial*1"); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Append(ops[50:]); !errors.Is(err, faultinject.ErrPartialWrite) {
			t.Fatalf("Append = %v, want injected partial write", err)
		}
		l.Crash()
		// The torn record must be truncated away; the synced prefix
		// survives.
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open after torn write: %v", err)
		}
		if l2.NextLSN() != 50 {
			t.Fatalf("NextLSN = %d, want 50", l2.NextLSN())
		}
		l2.Close()
	})
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadManifest(dir); err != nil || ok {
		t.Fatalf("LoadManifest on empty dir: ok=%v err=%v", ok, err)
	}
	snap := filepath.Join(dir, "snap-000064.gts")
	if err := os.WriteFile(snap, []byte("snapshot-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	crc, n, err := FileCRC(snap)
	if err != nil {
		t.Fatal(err)
	}
	want := Manifest{Snapshot: "snap-000064.gts", LastLSN: 100, SnapshotCRC: crc, SnapshotBytes: n, Shards: 4}
	if err := WriteManifest(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("LoadManifest: ok=%v err=%v", ok, err)
	}
	if got != want {
		t.Fatalf("manifest round trip: got %+v, want %+v", got, want)
	}
}
