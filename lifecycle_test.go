package graphtinker_test

// End-to-end lifecycle scenario over the public API only: stream a growing
// graph with live analytics, snapshot it, keep mutating, restore the
// snapshot elsewhere, delete down, and confirm every stage agrees with
// independent recomputation. This is the "downstream user" integration
// test — if any public surface regresses, this fails.

import (
	"bytes"
	"math"
	"testing"

	"graphtinker"
)

func lifecycleEdges(n int, seed uint64) []graphtinker.Edge {
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	out := make([]graphtinker.Edge, n)
	for i := range out {
		u := next() % 512
		out[i] = graphtinker.Edge{
			Src: (u * u) % 512, Dst: next() % 512,
			Weight: float32(next()%9) + 1,
		}
	}
	return out
}

func TestFullLifecycle(t *testing.T) {
	edges := lifecycleEdges(20000, 1)

	// Phase 1: stream in batches with a live session (BFS hybrid + CC).
	s, err := graphtinker.NewSession(graphtinker.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attach("bfs", graphtinker.BFS(0), graphtinker.DefaultAttachmentPolicy()); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach("cc", graphtinker.CC(), graphtinker.DefaultAttachmentPolicy()); err != nil {
		t.Fatal(err)
	}
	const batch = 4000
	for i := 0; i < len(edges); i += batch {
		out := s.ApplyBatch(graphtinker.Batch{Insert: edges[i : i+batch]})
		for name, run := range out.Runs {
			if !run.Converged {
				t.Fatalf("%s did not converge at batch %d", name, i/batch)
			}
		}
	}
	g := s.Graph()

	// Phase 2: snapshot mid-life.
	var snap bytes.Buffer
	if err := g.WriteSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	edgesAtSnapshot := g.NumEdges()

	// Phase 3: keep mutating the original (delete a third).
	live := g.Edges()
	var deleted []graphtinker.Edge
	for i, e := range live {
		if i%3 == 0 {
			deleted = append(deleted, e)
		}
	}
	out := s.ApplyBatch(graphtinker.Batch{Delete: deleted})
	if out.Deleted != len(deleted) {
		t.Fatalf("deleted %d, want %d", out.Deleted, len(deleted))
	}
	if len(out.Recomputed) != 2 {
		t.Fatalf("both programs should recompute after deletions: %v", out.Recomputed)
	}

	// Phase 4: restore the snapshot into a new graph; it must hold the
	// pre-deletion state exactly.
	restored, err := graphtinker.ReadSnapshot(&snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored.NumEdges() != edgesAtSnapshot {
		t.Fatalf("restored %d edges, want %d", restored.NumEdges(), edgesAtSnapshot)
	}
	if v := restored.CheckInvariants(); len(v) != 0 {
		t.Fatalf("restored graph unhealthy: %v", v)
	}

	// Phase 5: BFS on the restored graph equals BFS recomputed on a fresh
	// engine over the original pre-deletion edge set.
	restoredEng := graphtinker.MustNewEngine(restored, graphtinker.BFS(0),
		graphtinker.EngineOptions{Mode: graphtinker.FullProcessing})
	restoredEng.RunFromScratch()

	reference := graphtinker.MustNew(graphtinker.DefaultConfig())
	reference.InsertBatch(live) // live == snapshot-time edge set
	refEng := graphtinker.MustNewEngine(reference, graphtinker.BFS(0),
		graphtinker.EngineOptions{Mode: graphtinker.Hybrid})
	refEng.RunFromScratch()
	for v := uint64(0); v < refEng.NumVertices(); v++ {
		if restoredEng.Value(v) != refEng.Value(v) {
			t.Fatalf("restored bfs[%d] = %g, reference %g", v, restoredEng.Value(v), refEng.Value(v))
		}
	}

	// Phase 6: the mutated original's post-deletion BFS must differ from
	// the snapshot state for at least one vertex that lost its only path —
	// and must equal its own fresh recomputation (session already
	// recomputed; verify against an independent engine).
	checkEng := graphtinker.MustNewEngine(g, graphtinker.BFS(0),
		graphtinker.EngineOptions{Mode: graphtinker.FullProcessing})
	checkEng.RunFromScratch()
	for v := uint64(0); v < checkEng.NumVertices(); v++ {
		sv, err := s.Value("bfs", v)
		if err != nil {
			t.Fatal(err)
		}
		if sv != checkEng.Value(v) {
			t.Fatalf("session bfs[%d] = %g, independent %g", v, sv, checkEng.Value(v))
		}
	}

	// Phase 7: analytics sanity — the CC labels partition the vertex set.
	labels := make(map[float64]int)
	ccEng, _ := s.Engine("cc")
	for v := uint64(0); v < ccEng.NumVertices(); v++ {
		l := ccEng.Value(v)
		if math.IsNaN(l) {
			t.Fatalf("cc[%d] is NaN", v)
		}
		labels[l]++
	}
	if len(labels) == 0 {
		t.Fatalf("no components")
	}

	// Phase 8: export round trip through the text format.
	var txt bytes.Buffer
	if err := graphtinker.WriteGraphEdgeList(&txt, g); err != nil {
		t.Fatal(err)
	}
	reparsed, err := graphtinker.ReadEdgeList(&txt, graphtinker.EdgeFileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(reparsed)) != g.NumEdges() {
		t.Fatalf("text round trip: %d edges, want %d", len(reparsed), g.NumEdges())
	}
}
