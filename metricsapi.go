package graphtinker

import "graphtinker/internal/metrics"

// Observability facade: the internal/metrics primitives a caller needs to
// instrument stores directly (Graph.Instrument / Parallel.Instrument /
// Stinger.Instrument) and to consume the snapshots Session.MetricsSnapshot
// and the CLIs' -metrics-out flag emit.

// UpdateRecorder samples update-path latency and probe-distance histograms.
// All methods are safe for concurrent use; a nil recorder no-ops.
type UpdateRecorder = metrics.UpdateRecorder

// RecorderSnapshot is a point-in-time copy of an UpdateRecorder's six
// histograms (insert/delete/find latency in nanoseconds, and the cells
// inspected per operation).
type RecorderSnapshot = metrics.RecorderSnapshot

// HistogramSnapshot is one frozen histogram: cumulative-bucket counts plus
// count/sum/min/max, with Mean and Quantile helpers.
type HistogramSnapshot = metrics.HistogramSnapshot

// NewUpdateRecorder builds a recorder with the standard latency and probe
// bucket layouts.
func NewUpdateRecorder() *UpdateRecorder { return metrics.NewUpdateRecorder() }
