package graphtinker_test

// Recovery tests specific to the v2 parallel snapshot format and the
// bulk-load path behind it: the on-disk checkpoint really is v2, a
// directory holding a v1-era checkpoint still reopens (and upgrades to v2
// at its next checkpoint), and a death mid-parallel-bulk-load leaves the
// directory fully recoverable — the loader never mutates disk.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	graphtinker "graphtinker"
	"graphtinker/internal/core"
	"graphtinker/internal/faultinject"
	"graphtinker/internal/testutil"
	"graphtinker/internal/wal"
)

// snapshotVersion reads the format version of the manifest's snapshot.
func snapshotVersion(t *testing.T, dir string) uint16 {
	t.Helper()
	m, ok, err := wal.LoadManifest(dir)
	if err != nil || !ok || m.Snapshot == "" {
		t.Fatalf("manifest with snapshot expected: ok=%v err=%v", ok, err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, m.Snapshot))
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(raw); got != 0x47545053 {
		t.Fatalf("snapshot magic %#08x, want GTPS", got)
	}
	return binary.LittleEndian.Uint16(raw[4:])
}

func TestDurableStreamCheckpointWritesV2(t *testing.T) {
	dir := t.TempDir()
	ops := genStream(9000, 0xabc)
	opts := graphtinker.DurableStreamOptions{
		Shards:     4,
		Pipeline:   graphtinker.StreamPipelineOptions{MaxBatch: 512, FlushInterval: -1},
		Durability: graphtinker.DurabilityOptions{SyncInterval: -1},
	}
	ds, err := graphtinker.OpenDurableStream(graphtinker.DefaultConfig(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.PushBatch(ops[:6000]); err != nil {
		t.Fatal(err)
	}
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := ds.PushBatch(ops[6000:]); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	if v := snapshotVersion(t, dir); v != 2 {
		t.Fatalf("checkpoint wrote snapshot format v%d, want v2", v)
	}

	// Reopen rides the v2 bulk load + pipelined tail replay; the result
	// must still be exactly the submitted stream.
	re, err := graphtinker.OpenDurableStream(graphtinker.DefaultConfig(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	testutil.CheckAgainstRef(t, re.Store(), oracleOver(ops))
}

func TestDurableStreamUpgradesV1Snapshot(t *testing.T) {
	// Hand-build a durability directory the way a pre-v2 build would have
	// left it: a v1-format checkpoint bound by the manifest, no WAL tail.
	dir := t.TempDir()
	ops := genStream(7000, 0xd1d)
	cfg := graphtinker.DefaultConfig()
	p, err := core.NewParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops[:5000] {
		if op.Del {
			p.DeleteEdge(op.Src, op.Dst)
		} else {
			p.InsertEdge(op.Src, op.Dst, op.Weight)
		}
	}
	name := fmt.Sprintf("snap-%016x.gts", 5000)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteSnapshotV1(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	crc, size, err := wal.FileCRC(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.WriteManifest(dir, wal.Manifest{
		Snapshot: name, LastLSN: 5000,
		SnapshotCRC: crc, SnapshotBytes: size, Shards: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if v := snapshotVersion(t, dir); v != 1 {
		t.Fatalf("setup wrote v%d, want a v1 snapshot on disk", v)
	}

	// Reopen: the v1 snapshot must load, and the stream must keep working.
	opts := graphtinker.DurableStreamOptions{
		Shards:     4,
		Pipeline:   graphtinker.StreamPipelineOptions{MaxBatch: 512, FlushInterval: -1},
		Durability: graphtinker.DurabilityOptions{SyncInterval: -1},
	}
	ds, err := graphtinker.OpenDurableStream(cfg, dir, opts)
	if err != nil {
		t.Fatalf("reopen over a v1 snapshot: %v", err)
	}
	if got := ds.Recovery(); !got.Recovered || got.SnapshotOps != 5000 {
		t.Fatalf("v1 recovery info %+v, want Recovered with 5000 snapshot ops", got)
	}
	testutil.CheckAgainstRef(t, ds.Store(), oracleOver(ops[:5000]))

	// Push the rest and checkpoint: the directory upgrades to v2 in place.
	if err := ds.PushBatch(ops[5000:]); err != nil {
		t.Fatal(err)
	}
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if v := snapshotVersion(t, dir); v != 2 {
		t.Fatalf("post-upgrade checkpoint is v%d, want v2", v)
	}
	re, err := graphtinker.OpenDurableStream(cfg, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	testutil.CheckAgainstRef(t, re.Store(), oracleOver(ops))
}

func TestDurableStreamKillAtBulkLoadFailpoint(t *testing.T) {
	// A death mid-parallel-bulk-load (simulated by the recovery/bulk-load
	// failpoint firing on a later shard, i.e. with other sections already
	// loaded) must fail the open cleanly and leave the directory exactly
	// as recoverable as before: the loader reads, never writes.
	t.Cleanup(faultinject.Reset)
	faultinject.Reset()
	dir := t.TempDir()
	ops := genStream(10000, 0xcafe)
	opts := graphtinker.DurableStreamOptions{
		Shards:     4,
		Pipeline:   graphtinker.StreamPipelineOptions{MaxBatch: 512, FlushInterval: -1},
		Durability: graphtinker.DurabilityOptions{SyncInterval: -1, SegmentBytes: 1 << 15},
	}
	ds, err := graphtinker.OpenDurableStream(graphtinker.DefaultConfig(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.PushBatch(ops[:8000]); err != nil {
		t.Fatal(err)
	}
	if err := ds.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := ds.PushBatch(ops[8000:]); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	// Fire on the third section load: two shards are already in flight or
	// done when the "kill" lands.
	if err := faultinject.Set("recovery/bulk-load", "error*1@2"); err != nil {
		t.Fatal(err)
	}
	if _, err := graphtinker.OpenDurableStream(graphtinker.DefaultConfig(), dir, opts); err == nil {
		t.Fatal("open succeeded with the bulk-load failpoint armed")
	}
	faultinject.Reset()

	re, err := graphtinker.OpenDurableStream(graphtinker.DefaultConfig(), dir, opts)
	if err != nil {
		t.Fatalf("directory unrecoverable after a failed bulk load: %v", err)
	}
	defer re.Close()
	info := re.Recovery()
	if info.SnapshotOps != 8000 || info.SnapshotOps+info.ReplayedOps != uint64(len(ops)) {
		t.Fatalf("recovery info %+v: want 8000 snapshot ops and a %d-op total", info, len(ops))
	}
	testutil.CheckAgainstRef(t, re.Store(), oracleOver(ops))
}
