package graphtinker

// Replication facade: primary/follower handles over the durability layer.
//
// A ReplicatedStream is a DurableStream that additionally serves its
// checkpoint + live WAL tail to followers (internal/replication.Primary
// over the stream's own log). A ReplicaFollower is a read replica: it
// applies the primary's stream into its own durable directory and serves
// queries with WaitForLSN read-your-writes. Promotion turns a follower's
// directory into a primary's — reopen it with OpenReplicatedStream and
// the bumped epoch fences the old primary off.

import (
	"net"
	"time"

	"graphtinker/internal/replication"
)

// ReplicationRecorder carries replication telemetry (ship/apply counters,
// snapshot bootstraps, the follower lag gauge).
type ReplicationRecorder = replication.Recorder

// ReplicationRecorderSnapshot is its JSON form — the "replication"
// section of cmd/gtload's -metrics-out document.
type ReplicationRecorderSnapshot = replication.RecorderSnapshot

// NewReplicationRecorder builds an empty replication recorder.
func NewReplicationRecorder() *ReplicationRecorder { return replication.NewRecorder() }

// FollowerState is the follower's replication phase (syncing →
// catching-up → live).
type FollowerState = replication.State

// Follower states re-exported for callers switching on State().
const (
	FollowerIdle       = replication.StateIdle
	FollowerSyncing    = replication.StateSyncing
	FollowerCatchingUp = replication.StateCatchingUp
	FollowerLive       = replication.StateLive
	FollowerSealed     = replication.StateSealed
)

// ErrStaleEpoch reports a replication peer fenced off by the epoch
// counter after a promotion.
var ErrStaleEpoch = replication.ErrStaleEpoch

// ReplicatedStreamOptions configures OpenReplicatedStream.
type ReplicatedStreamOptions struct {
	// Stream configures the underlying durable stream.
	Stream DurableStreamOptions
	// HeartbeatInterval, when > 0, keeps idle followers' lag gauges
	// current at this period.
	HeartbeatInterval time.Duration
	// Recorder, when non-nil, receives ship-side replication telemetry.
	Recorder *ReplicationRecorder
}

// ReplicatedStream is a DurableStream that serves followers. All
// DurableStream methods apply; Serve/HandleConn attach followers.
type ReplicatedStream struct {
	*DurableStream
	primary *replication.Primary
	rec     *ReplicationRecorder
}

// OpenReplicatedStream opens a durability directory as a replication
// primary: recovery exactly as OpenDurableStream (including a promoted
// follower's directory — the manifest's epoch carries over), plus a
// serving side for followers.
func OpenReplicatedStream(cfg Config, dir string, opts ReplicatedStreamOptions) (*ReplicatedStream, error) {
	ds, err := OpenDurableStream(cfg, dir, opts.Stream)
	if err != nil {
		return nil, err
	}
	p := replication.NewPrimary(dir, ds.log, replication.PrimaryOptions{
		Epoch:             ds.epoch,
		HeartbeatInterval: opts.HeartbeatInterval,
		Recorder:          opts.Recorder,
	})
	return &ReplicatedStream{DurableStream: ds, primary: p, rec: opts.Recorder}, nil
}

// Serve accepts follower connections on ln until Close. Non-blocking.
func (r *ReplicatedStream) Serve(ln net.Listener) error { return r.primary.Serve(ln) }

// HandleConn serves one follower on conn, blocking until the stream ends.
func (r *ReplicatedStream) HandleConn(conn net.Conn) error { return r.primary.HandleConn(conn) }

// ReplicationMetrics snapshots the ship-side telemetry (zero when no
// recorder was configured).
func (r *ReplicatedStream) ReplicationMetrics() ReplicationRecorderSnapshot {
	return r.rec.Snapshot()
}

// PrimaryMetrics is the primary's replication-aware observability
// snapshot — the JSON shape gtload's -metrics-out replication section
// is built from.
type PrimaryMetrics struct {
	// NextLSN is the primary's log position (acked ops end here).
	NextLSN uint64 `json:"next_lsn"`
	// Epoch is the primary's replication term.
	Epoch uint64 `json:"epoch"`
	// Store is the store's operation-counter snapshot.
	Store Stats `json:"store"`
	// Replication carries the ship-side counters (frames/bytes/records/
	// ops shipped, snapshot bootstraps, stale-epoch rejects).
	Replication ReplicationRecorderSnapshot `json:"replication"`
}

// MetricsSnapshot captures the primary-side replication metrics in one
// JSON-marshalable document, the ReplicatedStream analogue of
// Session.MetricsSnapshot.
func (r *ReplicatedStream) MetricsSnapshot() PrimaryMetrics {
	return PrimaryMetrics{
		NextLSN:     r.NextLSN(),
		Epoch:       r.Epoch(),
		Store:       r.Store().Stats(),
		Replication: r.rec.Snapshot(),
	}
}

// Close stops serving followers, then closes the underlying stream.
func (r *ReplicatedStream) Close() (StreamTotals, error) {
	_ = r.primary.Close() // always nil today; the stream close below is the outcome
	return r.DurableStream.Close()
}

// Crash abandons the stream the way a killed process would, follower
// connections included. Built for the chaos suite.
func (r *ReplicatedStream) Crash() {
	_ = r.primary.Close() // cutting follower streams; nothing to report
	r.DurableStream.Crash()
}

// FollowerHandleOptions configures OpenFollower.
type FollowerHandleOptions struct {
	// Shards is the store width for a fresh directory (default 4); a
	// snapshot bootstrap adopts the primary's width.
	Shards int
	// Durability tunes the follower's own WAL (SnapshotEvery is ignored —
	// followers do not checkpoint in this version).
	Durability DurabilityOptions
	// Recorder, when non-nil, receives apply-side replication telemetry.
	Recorder *ReplicationRecorder
}

// ReplicaFollower is a read replica over its own durability directory.
type ReplicaFollower struct {
	f   *replication.Follower
	rec *ReplicationRecorder
}

// OpenFollower opens (or creates) a follower durability directory and
// recovers its replica state. Attach a primary with Dial or Run.
func OpenFollower(cfg Config, dir string, opts FollowerHandleOptions) (*ReplicaFollower, error) {
	f, err := replication.OpenFollower(cfg, dir, replication.FollowerOptions{
		Shards:       opts.Shards,
		SegmentBytes: opts.Durability.SegmentBytes,
		SyncInterval: opts.Durability.SyncInterval,
		Recorder:     opts.Recorder,
		WALRecorder:  opts.Durability.Recorder,
	})
	if err != nil {
		return nil, err
	}
	return &ReplicaFollower{f: f, rec: opts.Recorder}, nil
}

// Dial connects to a primary at addr and replays its stream until the
// connection ends. Blocking; run it on its own goroutine and reconnect on
// error for a resilient replica.
func (rf *ReplicaFollower) Dial(addr string) error { return rf.f.Dial(addr) }

// Run attaches conn as the primary stream and blocks until it ends.
func (rf *ReplicaFollower) Run(conn net.Conn) error { return rf.f.Run(conn) }

// Store exposes the replica for queries; do not mutate it. Re-fetch per
// read batch — a snapshot bootstrap swaps it.
func (rf *ReplicaFollower) Store() *Parallel { return rf.f.Store() }

// AppliedLSN is the replica's position: every op below it is applied.
func (rf *ReplicaFollower) AppliedLSN() uint64 { return rf.f.AppliedLSN() }

// WaitForLSN blocks until the replica has applied every op below lsn —
// read-your-writes for clients that saw the primary ack lsn. A
// non-positive timeout waits forever.
func (rf *ReplicaFollower) WaitForLSN(lsn uint64, timeout time.Duration) error {
	return rf.f.WaitForLSN(lsn, timeout)
}

// State reports the replication phase.
func (rf *ReplicaFollower) State() FollowerState { return rf.f.State() }

// Lag reports apply lag in ops against the primary's durable frontier.
func (rf *ReplicaFollower) Lag() uint64 { return rf.f.Lag() }

// Epoch returns the follower's replication term.
func (rf *ReplicaFollower) Epoch() uint64 { return rf.f.Epoch() }

// Recovery reports what opening the directory restored.
func (rf *ReplicaFollower) Recovery() replication.FollowerRecovery { return rf.f.Recovery() }

// ReplicationMetrics snapshots the apply-side telemetry (zero when no
// recorder was configured).
func (rf *ReplicaFollower) ReplicationMetrics() ReplicationRecorderSnapshot {
	return rf.rec.Snapshot()
}

// ReplicaMetrics is the follower's replication-aware observability
// snapshot — position, phase, lag and the apply-side counters in one
// JSON-marshalable document.
type ReplicaMetrics struct {
	// AppliedLSN is the replica's position: every op below it is applied.
	AppliedLSN uint64 `json:"applied_lsn"`
	// Epoch is the replica's replication term.
	Epoch uint64 `json:"epoch"`
	// State is the replication phase (syncing/catching-up/live/...).
	State string `json:"state"`
	// LagOps is the apply lag against the primary's durable frontier.
	LagOps uint64 `json:"lag_ops"`
	// Store is the replica store's operation-counter snapshot.
	Store Stats `json:"store"`
	// Replication carries the apply-side counters (records/ops applied,
	// snapshots installed, duplicate records dropped).
	Replication ReplicationRecorderSnapshot `json:"replication"`
}

// MetricsSnapshot captures the follower-side replication metrics in one
// document, the ReplicaFollower analogue of Session.MetricsSnapshot.
func (rf *ReplicaFollower) MetricsSnapshot() ReplicaMetrics {
	return ReplicaMetrics{
		AppliedLSN:  rf.AppliedLSN(),
		Epoch:       rf.Epoch(),
		State:       rf.State().String(),
		LagOps:      rf.Lag(),
		Store:       rf.Store().Stats(),
		Replication: rf.rec.Snapshot(),
	}
}

// Promote seals the follower, persists epoch+1 in its manifest, and
// closes it; reopen the directory with OpenReplicatedStream to serve
// writes. Returns the new epoch. The promoted state is the replica's
// applied prefix — pair with WaitForLSN where that matters.
func (rf *ReplicaFollower) Promote() (uint64, error) { return rf.f.Promote() }

// Close disconnects and releases the replica.
func (rf *ReplicaFollower) Close() error { return rf.f.Close() }

// Crash abandons the replica the way a killed process would. Built for
// the chaos suite.
func (rf *ReplicaFollower) Crash() { rf.f.Crash() }
