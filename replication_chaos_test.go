package graphtinker_test

// Chaos suite for WAL-shipping replication: kill the follower at every
// registered repl/* failpoint, recover its directory, and require an
// exact oracle prefix with zero duplicate applies; then exercise
// promotion kills and the epoch fence. Companion to durability_test.go's
// kill-at-every-failpoint suite, one layer up.

import (
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	graphtinker "graphtinker"
	"graphtinker/internal/faultinject"
	"graphtinker/internal/testutil"
)

// errFollowerKilled marks a follower stream goroutine that died to an
// injected panic — the chaos suite's stand-in for a hard process kill.
var errFollowerKilled = errors.New("follower killed by injected panic")

func openChaosPrimary(t *testing.T, dir string, rec *graphtinker.ReplicationRecorder) *graphtinker.ReplicatedStream {
	t.Helper()
	p, err := graphtinker.OpenReplicatedStream(graphtinker.DefaultConfig(), dir, graphtinker.ReplicatedStreamOptions{
		Stream: graphtinker.DurableStreamOptions{
			Shards:     2,
			Pipeline:   graphtinker.StreamPipelineOptions{MaxBatch: 256, FlushInterval: -1},
			Durability: graphtinker.DurabilityOptions{SyncInterval: -1, SegmentBytes: 1 << 14},
		},
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// openChaosFollower opens a follower with sync-every-append so that
// everything it applied is durable — Crash() then models losing only
// in-flight state, exactly like killing a conservative replica process.
func openChaosFollower(t *testing.T, dir string, rec *graphtinker.ReplicationRecorder) *graphtinker.ReplicaFollower {
	t.Helper()
	f, err := graphtinker.OpenFollower(graphtinker.DefaultConfig(), dir, graphtinker.FollowerHandleOptions{
		Shards:     4,
		Durability: graphtinker.DurabilityOptions{SyncInterval: 0, SegmentBytes: 1 << 14},
		Recorder:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// connectChaos wires follower to primary over an in-process pipe and
// returns the follower stream's exit channel. An injected panic inside
// the stream is contained and surfaces as errFollowerKilled.
func connectChaos(p *graphtinker.ReplicatedStream, f *graphtinker.ReplicaFollower) <-chan error {
	pc, fc := net.Pipe()
	go func() { _ = p.HandleConn(pc) }() // exits when either side drops; the follower error is the signal
	errc := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(faultinject.PanicValue); !ok {
					panic(r)
				}
				errc <- errFollowerKilled
			}
		}()
		errc <- f.Run(fc)
	}()
	return errc
}

// pushAcked pushes ops and flushes to the durable frontier, returning the
// acked LSN: every op below it must survive any follower recovery that
// reached it.
func pushAcked(t *testing.T, p *graphtinker.ReplicatedStream, ops []graphtinker.Update) uint64 {
	t.Helper()
	if err := p.PushBatch(ops); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	return p.NextLSN()
}

func waitFollower(t *testing.T, f *graphtinker.ReplicaFollower, lsn uint64) {
	t.Helper()
	if err := f.WaitForLSN(lsn, 10*time.Second); err != nil {
		t.Fatalf("WaitForLSN(%d): %v", lsn, err)
	}
}

// TestReplicationKillAtEveryFailpoint is the acceptance gate: for every
// registered replication failpoint, killing the follower there and
// reopening its directory yields an exact oracle prefix of the primary's
// stream with zero duplicate applies, and a reconnect heals it to the
// full stream.
func TestReplicationKillAtEveryFailpoint(t *testing.T) {
	ops := genStream(6000, 71)
	cases := []struct {
		name, fp, spec string
		bootstrap      bool
	}{
		{"frame-send-early", "repl/frame-send", "error*1@2", false},
		{"frame-send-late", "repl/frame-send", "error*1@9", false},
		{"frame-recv-early", "repl/frame-recv", "error*1@1", false},
		{"frame-recv-late", "repl/frame-recv", "error*1@8", false},
		{"apply-first", "repl/apply", "error*1", false},
		{"apply-mid", "repl/apply", "error*1@5", false},
		{"apply-kill", "repl/apply", "panic*1@3", false},
		{"snapshot-error", "repl/snapshot", "error*1", true},
		{"snapshot-kill", "repl/snapshot", "panic*1", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faultinject.Reset()
			t.Cleanup(faultinject.Reset)
			pdir, fdir := t.TempDir(), t.TempDir()
			prim := openChaosPrimary(t, pdir, nil)
			defer prim.Crash()

			// The bootstrap cases force a snapshot handoff: checkpoint +
			// prune before the follower ever connects, so LSN 0 is gone
			// from the primary's log.
			stream := ops
			var acked uint64
			var errc <-chan error
			rec := graphtinker.NewReplicationRecorder()
			var f *graphtinker.ReplicaFollower
			if tc.bootstrap {
				stream = ops[:4000]
				pushAcked(t, prim, stream[:2500])
				if err := prim.Checkpoint(); err != nil {
					t.Fatal(err)
				}
				acked = 0 // the follower dies before applying anything
				pushAcked(t, prim, stream[2500:])
				if err := faultinject.Set(tc.fp, tc.spec); err != nil {
					t.Fatal(err)
				}
				f = openChaosFollower(t, fdir, rec)
				errc = connectChaos(prim, f)
			} else {
				acked = pushAcked(t, prim, stream[:2000])
				f = openChaosFollower(t, fdir, rec)
				errc = connectChaos(prim, f)
				waitFollower(t, f, acked)
				if err := faultinject.Set(tc.fp, tc.spec); err != nil {
					t.Fatal(err)
				}
				// Small acked chunks keep frames flowing so skip-count
				// specs reach deep into the live stream.
				for i := 2000; i < len(stream); i += 250 {
					end := i + 250
					if end > len(stream) {
						end = len(stream)
					}
					pushAcked(t, prim, stream[i:end])
				}
			}
			total := uint64(len(stream))

			select {
			case err := <-errc:
				if err == nil {
					t.Fatal("follower stream ended cleanly with a failpoint armed")
				}
			case <-time.After(10 * time.Second):
				t.Fatalf("follower did not die at %s within 10s", tc.fp)
			}
			if faultinject.Fired(tc.fp) == 0 {
				t.Fatalf("failpoint %s never fired", tc.fp)
			}
			f.Crash()
			faultinject.Reset()

			// Recovery: exact prefix, zero duplicate applies (the LSN
			// accounting identity), no torn bootstrap leftovers.
			rec2 := graphtinker.NewReplicationRecorder()
			f2 := openChaosFollower(t, fdir, rec2)
			applied := f2.AppliedLSN()
			if tc.bootstrap {
				if applied != 0 {
					t.Fatalf("killed mid-bootstrap but recovered to LSN %d, want 0", applied)
				}
				if stale, _ := filepath.Glob(filepath.Join(fdir, ".bootstrap-*")); len(stale) != 0 {
					t.Fatalf("bootstrap temp files survived recovery: %v", stale)
				}
			} else if applied < acked || applied > total {
				t.Fatalf("recovered LSN %d outside acked window [%d, %d]", applied, acked, total)
			}
			info := f2.Recovery()
			if info.SnapshotOps+info.ReplayedOps != applied {
				t.Fatalf("duplicate applies: snapshot %d + replayed %d != applied %d",
					info.SnapshotOps, info.ReplayedOps, applied)
			}
			testutil.CheckAgainstRef(t, f2.Store(), oracleOver(stream[:applied]))

			// Heal: reconnect and require exact convergence on the full
			// stream with no duplicate records on the wire.
			errc2 := connectChaos(prim, f2)
			waitFollower(t, f2, total)
			testutil.CheckAgainstRef(t, f2.Store(), oracleOver(stream))
			if d := rec2.Snapshot().DuplicateRecords; d != 0 {
				t.Fatalf("resume shipped %d duplicate records", d)
			}
			if tc.bootstrap {
				if got := rec2.Snapshot().SnapshotsInstalled; got != 1 {
					t.Fatalf("healed follower installed %d snapshots, want 1", got)
				}
			}
			if err := f2.Close(); err != nil {
				t.Fatal(err)
			}
			if err := <-errc2; err != nil {
				t.Fatalf("Run after Close = %v, want nil", err)
			}
		})
	}
}

// TestPromotionChaosAndEpochFencing covers the failover story: a failed
// promotion persist is retryable, a kill at the persist failpoint
// recovers at the old epoch and re-promotes, and after promotion the
// follower's lineage refuses the deposed primary while a fresh follower
// adopts the new epoch.
func TestPromotionChaosAndEpochFencing(t *testing.T) {
	t.Run("retry-then-fence", func(t *testing.T) {
		faultinject.Reset()
		t.Cleanup(faultinject.Reset)
		ops := genStream(3000, 73)
		pdir, fdir := t.TempDir(), t.TempDir()
		rec0 := graphtinker.NewReplicationRecorder()
		prim := openChaosPrimary(t, pdir, rec0)
		defer prim.Crash()
		acked := pushAcked(t, prim, ops)
		f := openChaosFollower(t, fdir, nil)
		errc := connectChaos(prim, f)
		waitFollower(t, f, acked)

		// A transient persist failure seals the stream but leaves Promote
		// retryable.
		if err := faultinject.Set("repl/promote", "error*1"); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Promote(); err == nil {
			t.Fatal("Promote succeeded through an armed persist failpoint")
		}
		if err := <-errc; err != nil {
			t.Fatalf("sealed stream exit = %v, want nil", err)
		}
		faultinject.Reset()
		epoch, err := f.Promote()
		if err != nil {
			t.Fatalf("Promote retry: %v", err)
		}
		if epoch != 1 {
			t.Fatalf("promoted epoch = %d, want 1", epoch)
		}

		// The promoted directory reopens as a follower at epoch 1 with the
		// exact applied prefix — and rejects the deposed epoch-0 primary.
		f2 := openChaosFollower(t, fdir, nil)
		if got := f2.Epoch(); got != 1 {
			t.Fatalf("promoted follower epoch = %d, want 1", got)
		}
		if got := f2.AppliedLSN(); got != acked {
			t.Fatalf("promoted follower at LSN %d, want %d", got, acked)
		}
		info := f2.Recovery()
		if info.SnapshotOps+info.ReplayedOps != acked {
			t.Fatalf("promotion duplicated applies: snapshot %d + replayed %d != %d",
				info.SnapshotOps, info.ReplayedOps, acked)
		}
		testutil.CheckAgainstRef(t, f2.Store(), oracleOver(ops))
		if err := <-connectChaos(prim, f2); !errors.Is(err, graphtinker.ErrStaleEpoch) {
			t.Fatalf("deposed primary accepted promoted follower: %v", err)
		}
		if got := rec0.Snapshot().StaleEpochRejects; got != 1 {
			t.Fatalf("deposed primary StaleEpochRejects = %d, want 1", got)
		}
		if got := f2.AppliedLSN(); got != acked {
			t.Fatalf("fenced stream still moved the follower: LSN %d, want %d", got, acked)
		}
		if err := f2.Close(); err != nil {
			t.Fatal(err)
		}

		// Reopened as a primary, the directory serves the promoted epoch:
		// new writes land, and a fresh follower adopts epoch 1.
		p1 := openChaosPrimary(t, fdir, nil)
		defer p1.Crash()
		if got := p1.Epoch(); got != 1 {
			t.Fatalf("promoted primary epoch = %d, want 1", got)
		}
		extra := genStream(500, 79)
		all := append(append([]graphtinker.Update{}, ops...), extra...)
		acked2 := pushAcked(t, p1, extra)
		if acked2 != uint64(len(all)) {
			t.Fatalf("promoted primary LSN %d, want %d", acked2, len(all))
		}
		g := openChaosFollower(t, t.TempDir(), nil)
		gc := connectChaos(p1, g)
		waitFollower(t, g, acked2)
		testutil.CheckAgainstRef(t, g.Store(), oracleOver(all))
		if got := g.Epoch(); got != 1 {
			t.Fatalf("fresh follower adopted epoch %d, want 1", got)
		}
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
		<-gc
	})

	t.Run("kill-at-promote-persist", func(t *testing.T) {
		faultinject.Reset()
		t.Cleanup(faultinject.Reset)
		ops := genStream(1200, 83)
		pdir, fdir := t.TempDir(), t.TempDir()
		prim := openChaosPrimary(t, pdir, nil)
		defer prim.Crash()
		acked := pushAcked(t, prim, ops)
		f := openChaosFollower(t, fdir, nil)
		errc := connectChaos(prim, f)
		waitFollower(t, f, acked)

		if err := faultinject.Set("repl/promote", "panic*1"); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("Promote returned through an armed panic failpoint")
				}
				if _, ok := r.(faultinject.PanicValue); !ok {
					panic(r)
				}
			}()
			_, _ = f.Promote()
		}()
		<-errc // the seal cut the stream before the kill
		f.Crash()
		faultinject.Reset()

		// The kill landed after the seal but before the manifest: recovery
		// is a follower at the OLD epoch with the same applied prefix, and
		// promotion completes on retry.
		f2 := openChaosFollower(t, fdir, nil)
		if got := f2.Epoch(); got != 0 {
			t.Fatalf("epoch after killed promotion = %d, want 0", got)
		}
		if got := f2.AppliedLSN(); got != acked {
			t.Fatalf("recovered LSN %d, want %d", got, acked)
		}
		testutil.CheckAgainstRef(t, f2.Store(), oracleOver(ops))
		epoch, err := f2.Promote()
		if err != nil {
			t.Fatalf("re-promote after kill: %v", err)
		}
		if epoch != 1 {
			t.Fatalf("re-promoted epoch = %d, want 1", epoch)
		}
		p1 := openChaosPrimary(t, fdir, nil)
		defer p1.Crash()
		if got := p1.Epoch(); got != 1 {
			t.Fatalf("promoted primary epoch = %d, want 1", got)
		}
		if got := p1.NextLSN(); got != acked {
			t.Fatalf("promoted primary LSN %d, want %d", got, acked)
		}
		testutil.CheckAgainstRef(t, p1.Store(), oracleOver(ops))
	})
}

// TestWaitForLSNReadYourWritesDifferential is the read-your-writes
// differential: at every primary ack barrier, a client that saw LSN n
// acked and then WaitForLSN(n)s on the follower must observe a store
// exactly equal to the reference model over ops[:n] — every acked batch
// fully visible, never a torn one.
func TestWaitForLSNReadYourWritesDifferential(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	ops := genStream(4000, 77)
	prec := graphtinker.NewReplicationRecorder()
	prim := openChaosPrimary(t, t.TempDir(), prec)
	defer prim.Crash()
	frec := graphtinker.NewReplicationRecorder()
	f := openChaosFollower(t, t.TempDir(), frec)
	errc := connectChaos(prim, f)
	for i := 0; i < len(ops); i += 160 {
		end := i + 160
		if end > len(ops) {
			end = len(ops)
		}
		acked := pushAcked(t, prim, ops[i:end])
		if err := f.WaitForLSN(acked, 10*time.Second); err != nil {
			t.Fatalf("WaitForLSN(%d): %v", acked, err)
		}
		if got := f.AppliedLSN(); got < acked {
			t.Fatalf("WaitForLSN(%d) returned early at applied %d", acked, got)
		}
		testutil.CheckAgainstRef(t, f.Store(), oracleOver(ops[:acked]))
	}
	if got := f.Lag(); got != 0 {
		t.Fatalf("follower lag = %d after draining the stream, want 0", got)
	}

	// The combined observability snapshots surface position, lag and the
	// ship/apply counters (primary ship counters land just after the
	// frame send, hence the poll).
	total := uint64(len(ops))
	fm := f.MetricsSnapshot()
	if fm.AppliedLSN != total || fm.LagOps != 0 || fm.Replication.OpsApplied != total {
		t.Fatalf("follower MetricsSnapshot = LSN %d lag %d applied %d, want LSN %d lag 0 applied %d",
			fm.AppliedLSN, fm.LagOps, fm.Replication.OpsApplied, total, total)
	}
	if fm.State != graphtinker.FollowerLive.String() {
		t.Fatalf("follower MetricsSnapshot state = %q, want %q", fm.State, graphtinker.FollowerLive)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		pm := prim.MetricsSnapshot()
		if pm.NextLSN != total {
			t.Fatalf("primary MetricsSnapshot NextLSN = %d, want %d", pm.NextLSN, total)
		}
		if pm.Replication.OpsShipped == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary MetricsSnapshot OpsShipped = %d, want %d", pm.Replication.OpsShipped, total)
		}
		time.Sleep(time.Millisecond)
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Run after Close = %v, want nil", err)
	}
}
