#!/usr/bin/env bash
# bench.sh runs the gtbench steady-state perf sweep exactly as CI's
# perf-smoke job does: write the sweep to $BENCH_OUT and gate it against
# the committed baseline. Run it from anywhere; it cds to the repo root.
#
#   bash scripts/bench.sh                 # gate against the committed baselines
#   BENCH_OUT=/tmp/now.json bash scripts/bench.sh
#   BENCH_BASELINE= bash scripts/bench.sh # sweep only, no gate
#
# Two baselines gate by default: BENCH_6.json covers the update/read hot
# paths, BENCH_10.json the recovery probes (snapshot write/load, WAL
# replay, reopen — including the parallel-vs-sequential speedup ratios).
# To refresh a committed baseline after an intentional perf change, write
# the sweep over it and re-filter (see EXPERIMENTS.md):
#   BENCH_OUT=BENCH_6.json BENCH_BASELINE= bash scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_OUT="${BENCH_OUT-bench-current.json}"
BENCH_BASELINE="${BENCH_BASELINE-BENCH_6.json,BENCH_10.json}"
BENCH_TOLERANCE="${BENCH_TOLERANCE-10}"
BENCH_LAT_TOLERANCE="${BENCH_LAT_TOLERANCE-400}"

args=(-bench-out "$BENCH_OUT")
if [ -n "$BENCH_BASELINE" ]; then
  args+=(-compare "$BENCH_BASELINE" -tolerance "$BENCH_TOLERANCE" -lat-tolerance "$BENCH_LAT_TOLERANCE")
fi

go run ./cmd/gtbench "${args[@]}"
