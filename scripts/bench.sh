#!/usr/bin/env bash
# bench.sh runs the gtbench steady-state perf sweep exactly as CI's
# perf-smoke job does: write the sweep to $BENCH_OUT and gate it against
# the committed baseline. Run it from anywhere; it cds to the repo root.
#
#   bash scripts/bench.sh                 # gate against BENCH_6.json
#   BENCH_OUT=/tmp/now.json bash scripts/bench.sh
#   BENCH_BASELINE= bash scripts/bench.sh # sweep only, no gate
#
# To refresh the committed baseline after an intentional perf change:
#   BENCH_OUT=BENCH_6.json BENCH_BASELINE= bash scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_OUT="${BENCH_OUT-bench-current.json}"
BENCH_BASELINE="${BENCH_BASELINE-BENCH_6.json}"
BENCH_TOLERANCE="${BENCH_TOLERANCE-10}"
BENCH_LAT_TOLERANCE="${BENCH_LAT_TOLERANCE-400}"

args=(-bench-out "$BENCH_OUT")
if [ -n "$BENCH_BASELINE" ]; then
  args+=(-compare "$BENCH_BASELINE" -tolerance "$BENCH_TOLERANCE" -lat-tolerance "$BENCH_LAT_TOLERANCE")
fi

go run ./cmd/gtbench "${args[@]}"
