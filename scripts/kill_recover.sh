#!/usr/bin/env bash
# Kill/restart round-trip demo for the durability layer: start a durable
# gtload, SIGKILL it mid-stream, recover the directory, and check the
# recovered position is a consistent prefix (snapshot + replayed = LSN).
# Exit 0 means the round trip held; used by the CI chaos job and runnable
# by hand:
#
#   scripts/kill_recover.sh [workdir]
set -euo pipefail

cd "$(dirname "$0")/.."
work="${1:-$(mktemp -d)}"
state="$work/state"
mkdir -p "$work"

echo "== kill_recover: workdir $work"
go build -o "$work/gtload" ./cmd/gtload

# Phase 1: durable load, killed mid-stream. A scale-18 stream takes long
# enough that the kill lands while batches are still being pushed; the 2ms
# group-commit window bounds what the kill can lose.
"$work/gtload" -rmat-scale 18 -shards 4 -wal-dir "$state" \
  -snapshot-every 1000000 >"$work/load.out" 2>&1 &
pid=$!
# Wait until at least one batch has been durably acknowledged, then kill.
for _ in $(seq 1 100); do
  grep -q "batch " "$work/load.out" 2>/dev/null && break
  sleep 0.1
done
sleep 0.3
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
echo "== killed loader (pid $pid) after:"
tail -3 "$work/load.out"

# Phase 2: recover. The run fails loudly if the directory is corrupt
# (manifest/CRC/torn-tail validation all happen on this path).
"$work/gtload" -recover -wal-dir "$state" >"$work/recover1.out" 2>&1
cat "$work/recover1.out"
grep -q "^recovered " "$work/recover1.out" || {
  echo "FAIL: first recovery reported nothing recovered" >&2
  exit 1
}
lsn1=$(sed -n 's/^durable LSN: *//p' "$work/recover1.out")
edges1=$(sed -n 's/^live edges: *//p' "$work/recover1.out")
[ "$lsn1" -gt 0 ] || { echo "FAIL: recovered LSN is 0" >&2; exit 1; }

# Phase 3: recover again — replay must be idempotent, so position and edge
# count cannot move between two recoveries of the same directory.
"$work/gtload" -recover -wal-dir "$state" >"$work/recover2.out" 2>&1
lsn2=$(sed -n 's/^durable LSN: *//p' "$work/recover2.out")
edges2=$(sed -n 's/^live edges: *//p' "$work/recover2.out")
if [ "$lsn1" != "$lsn2" ] || [ "$edges1" != "$edges2" ]; then
  echo "FAIL: recovery is not idempotent (LSN $lsn1->$lsn2, edges $edges1->$edges2)" >&2
  exit 1
fi

echo "== OK: recovered LSN $lsn1 with $edges1 live edges, idempotent across restarts"
