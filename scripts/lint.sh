#!/usr/bin/env bash
# Repo lint gate: formatting, module tidiness, and the gtlint invariant
# suite. Exit 0 means the tree is clean; used by the CI lint job and
# runnable by hand:
#
#   scripts/lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
  echo "FAIL: gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go mod tidy"
cp go.mod /tmp/lint-go.mod.bak
go mod tidy
if ! cmp -s go.mod /tmp/lint-go.mod.bak; then
  mv /tmp/lint-go.mod.bak go.mod
  echo "FAIL: go mod tidy changes go.mod; commit a tidy module file" >&2
  exit 1
fi
rm -f /tmp/lint-go.mod.bak

echo "== gtlint (diff vs gtlint-baseline.json)"
# Findings already recorded in the committed baseline are tolerated;
# only new findings fail the gate. Refresh deliberately with
#   go run ./cmd/gtlint -write-baseline
# and commit the result (the nightly lint-report job ignores the
# baseline, so the accepted backlog stays visible).
go run ./cmd/gtlint -diff ./...

echo "== OK: lint clean"
