package graphtinker

// Session is the high-level orchestration layer for dynamic-graph
// analytics: one GraphTinker store plus any number of attached vertex
// programs, kept up to date as batches stream in. It packages the paper's
// two-step loop (apply batch, then run analytics on the current graph
// state) behind a single call, choosing the correct recomputation strategy
// per attachment when deletions invalidate monotone incremental state.

import (
	"fmt"
	"sort"
	"sync"
)

// AttachmentPolicy controls how an attached program reacts to batches.
type AttachmentPolicy struct {
	// Mode is the engine execution model for insertion batches.
	Mode Mode
	// Threshold overrides the hybrid inference-box threshold (0 = 0.02).
	Threshold float64
	// MaxIterations guards non-converging programs (0 = vertex count + 2).
	MaxIterations int
	// RecomputeOnDelete, when true (the default for monotone programs),
	// makes any batch that contains deletions trigger a from-scratch run:
	// min-based programs cannot raise properties incrementally, exactly
	// why the paper evaluates post-deletion analytics in full-processing
	// mode (Fig. 15).
	RecomputeOnDelete bool
}

// DefaultAttachmentPolicy runs hybrid with recompute-on-delete.
func DefaultAttachmentPolicy() AttachmentPolicy {
	return AttachmentPolicy{Mode: Hybrid, RecomputeOnDelete: true}
}

// Session owns a store and its attached engines.
//
// Single-writer contract: the underlying Graph is not safe for concurrent
// mutation, and attached programs recompute over the live graph, so every
// mutating or engine-running entry point (ApplyBatch, Recompute, Attach,
// Detach) and every snapshot of session state serializes on one internal
// mutex. Concurrent ApplyBatch callers are therefore safe — they are
// applied one at a time — and an attached program never observes a graph
// mutating under it. The async stream (StartStream / ApplyAsync) funnels
// through the same mutex.
type Session struct {
	mu      sync.Mutex
	graph   *Graph
	engines map[string]*sessionAttachment

	rec      *UpdateRecorder
	batches  int
	inserted int
	deleted  int

	stream *SessionStream
	dur    *sessionDurability
}

type sessionAttachment struct {
	engine *Engine
	policy AttachmentPolicy

	// Aggregated telemetry across every run this attachment has performed.
	runs       int
	recomputes int
	aggregate  RunResult
}

func (a *sessionAttachment) record(res RunResult, recomputed bool) {
	a.runs++
	if recomputed {
		a.recomputes++
	}
	if a.runs == 1 {
		a.aggregate = res
	} else {
		a.aggregate.Merge(res)
	}
}

// NewSession builds a session over a fresh store.
func NewSession(cfg Config) (*Session, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Session{graph: g, engines: make(map[string]*sessionAttachment)}, nil
}

// Graph exposes the underlying store (queries are fine; mutate only
// through the session so attached engines stay consistent).
func (s *Session) Graph() *Graph { return s.graph }

// Attach registers a named program. The name keys later Value/Results
// lookups.
func (s *Session) Attach(name string, prog Program, policy AttachmentPolicy) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.engines[name]; dup {
		return fmt.Errorf("graphtinker: program %q already attached", name)
	}
	eng, err := NewEngine(s.graph, prog, EngineOptions{
		Mode:          policy.Mode,
		Threshold:     policy.Threshold,
		MaxIterations: policy.MaxIterations,
	})
	if err != nil {
		return err
	}
	s.engines[name] = &sessionAttachment{engine: eng, policy: policy}
	return nil
}

// Detach removes a named program; it reports whether it was attached.
func (s *Session) Detach(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.engines[name]; !ok {
		return false
	}
	delete(s.engines, name)
	return true
}

// Attached lists the attached program names, sorted.
func (s *Session) Attached() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.attachedLocked()
}

func (s *Session) attachedLocked() []string {
	names := make([]string, 0, len(s.engines))
	for n := range s.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Batch is one update interval: insertions and deletions applied together
// before analytics run.
type Batch struct {
	Insert []Edge
	Delete []Edge
}

// BatchOutcome reports what one ApplyBatch did.
type BatchOutcome struct {
	// Inserted / Deleted are the numbers of edges actually added/removed
	// (duplicates and absentees excluded).
	Inserted int
	Deleted  int
	// Runs holds each attached program's engine result, keyed by name.
	Runs map[string]RunResult
	// Recomputed lists the programs that ran from scratch because the
	// batch contained deletions.
	Recomputed []string
	// DurabilityErr is non-nil when the session is durable and the batch
	// could not be logged: the batch was NOT applied (a durable session
	// never acknowledges state the WAL does not cover). See
	// Session.EnableDurability.
	DurabilityErr error `json:"-"`
	// CheckpointErr is non-nil when the batch WAS applied and WAL-logged
	// but the auto-checkpoint that followed it failed. Do not re-submit the
	// batch — it is durable; the un-compacted tail simply stays in the WAL
	// until a later Checkpoint succeeds.
	CheckpointErr error `json:"-"`
}

// ApplyBatch applies the updates to the store, then runs every attached
// program on the new graph state per its policy. Safe for concurrent
// callers: batches serialize on the session mutex (see the type comment),
// so attached programs always recompute over a quiescent graph.
func (s *Session) ApplyBatch(b Batch) BatchOutcome {
	s.mu.Lock()
	defer s.mu.Unlock()
	//gtlint:ignore lockhold auto-checkpoint snapshots under s.mu by design: the single-writer lock is what keeps the snapshot consistent
	return s.applyBatchLocked(b)
}

func (s *Session) applyBatchLocked(b Batch) BatchOutcome {
	out := BatchOutcome{Runs: make(map[string]RunResult, len(s.engines))}
	if s.dur != nil {
		// Log before apply: a batch is acknowledged only once the WAL
		// covers it, so recovery can never miss an acknowledged batch.
		if err := s.dur.appendBatch(b); err != nil {
			out.DurabilityErr = err
			return out
		}
	}
	out.Inserted = s.graph.InsertBatch(b.Insert)
	out.Deleted = s.graph.DeleteBatch(b.Delete)
	s.batches++
	s.inserted += out.Inserted
	s.deleted += out.Deleted

	hasDeletes := out.Deleted > 0
	for _, name := range s.attachedLocked() {
		att := s.engines[name]
		var res RunResult
		recomputed := hasDeletes && att.policy.RecomputeOnDelete
		if recomputed {
			res = att.engine.RunFromScratch()
			out.Recomputed = append(out.Recomputed, name)
		} else {
			res = att.engine.RunAfterBatch(b.Insert)
		}
		att.record(res, recomputed)
		out.Runs[name] = res
	}
	if s.dur != nil {
		s.dur.sinceCkpt += uint64(len(b.Insert) + len(b.Delete))
		if every := s.dur.opts.SnapshotEvery; every > 0 && s.dur.sinceCkpt >= every {
			// The batch is already logged and applied; a checkpoint failure
			// must not masquerade as a refused batch (callers honoring the
			// DurabilityErr contract would re-submit and double-apply it).
			if err := s.checkpointLocked(); err != nil {
				out.CheckpointErr = err
			}
		}
	}
	return out
}

// Recompute forces a named program to run from scratch now.
func (s *Session) Recompute(name string) (RunResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	att, ok := s.engines[name]
	if !ok {
		return RunResult{}, fmt.Errorf("graphtinker: no program %q attached", name)
	}
	res := att.engine.RunFromScratch()
	att.record(res, true)
	return res, nil
}

// EnableMetrics attaches an update-path recorder to the session's store so
// subsequent inserts, deletes and finds sample latency and probe-distance
// histograms. Idempotent; returns the recorder (also reachable later via
// MetricsSnapshot). The recorder is safe to snapshot concurrently with
// updates.
func (s *Session) EnableMetrics() *UpdateRecorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rec == nil {
		s.rec = NewUpdateRecorder()
		s.graph.Instrument(s.rec)
	}
	return s.rec
}

// ProgramMetrics aggregates one attachment's engine runs.
type ProgramMetrics struct {
	// Runs counts engine invocations; Recomputes counts those forced from
	// scratch (deletion batches under RecomputeOnDelete, or Recompute).
	Runs       int `json:"runs"`
	Recomputes int `json:"recomputes"`
	// Aggregate merges every run: totals summed, per-iteration traces
	// concatenated.
	Aggregate RunResult `json:"aggregate"`
}

// SessionMetrics is the session-wide observability snapshot —
// the JSON document cmd/gtload writes for -metrics-out.
type SessionMetrics struct {
	// Batches / Inserted / Deleted count ApplyBatch work so far.
	Batches  int `json:"batches"`
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// Store is the store's operation-counter snapshot.
	Store Stats `json:"store"`
	// Updates holds the latency/probe histograms; nil until EnableMetrics.
	Updates *RecorderSnapshot `json:"updates,omitempty"`
	// Programs aggregates each attachment's runs, keyed by name.
	Programs map[string]ProgramMetrics `json:"programs"`
}

// MetricsSnapshot captures the current session-wide metrics. Safe to call
// at any time; histograms are read atomically (concurrent updates may land
// in or out of the snapshot, but never corrupt it).
func (s *Session) MetricsSnapshot() SessionMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := SessionMetrics{
		Batches:  s.batches,
		Inserted: s.inserted,
		Deleted:  s.deleted,
		Store:    s.graph.Stats(),
		Programs: make(map[string]ProgramMetrics, len(s.engines)),
	}
	if s.rec != nil {
		snap := s.rec.Snapshot()
		m.Updates = &snap
	}
	for name, att := range s.engines {
		m.Programs[name] = ProgramMetrics{
			Runs:       att.runs,
			Recomputes: att.recomputes,
			Aggregate:  att.aggregate,
		}
	}
	return m
}

// Value returns the named program's current property of vertex v.
func (s *Session) Value(name string, v uint64) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	att, ok := s.engines[name]
	if !ok {
		return 0, fmt.Errorf("graphtinker: no program %q attached", name)
	}
	return att.engine.Value(v), nil
}

// Engine exposes the named program's engine (read-mostly use; while
// batches may be applying concurrently, prefer Value, which serializes on
// the session mutex).
func (s *Session) Engine(name string) (*Engine, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	att, ok := s.engines[name]
	if !ok {
		return nil, false
	}
	return att.engine, true
}
