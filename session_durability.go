package graphtinker

// Durable sessions: the batch-analytics path's crash safety. A durable
// session logs every batch's ops (inserts, then deletes — the exact order
// applyBatchLocked applies them) to a WAL before touching the graph, so a
// batch is acknowledged only once the log covers it. Recover rebuilds a
// session from the directory: manifest-validated snapshot, then an
// idempotent replay of the WAL tail. The directory layout and manifest are
// shared with DurableStream (see durability.go); a session's manifest
// records Shards = 1.

import (
	"fmt"
	"os"

	"graphtinker/internal/core"
	"graphtinker/internal/wal"
)

// sessionDurability is the durable state attached to a session. All access
// is under the session mutex.
type sessionDurability struct {
	dir  string
	log  *wal.Log
	opts DurabilityOptions

	lastCkpt  uint64
	sinceCkpt uint64
	epoch     uint64 // replication term from the manifest; preserved by checkpoints
	failed    bool   // a WAL write failed; further batches are refused
	info      RecoveryInfo
}

// sessionReplayTarget adapts a session's single graph to the pipelined
// replay interface: one shard, every src on it, ops applied in order.
type sessionReplayTarget struct {
	g *core.GraphTinker
}

func (t sessionReplayTarget) NumShards() int     { return 1 }
func (t sessionReplayTarget) ShardOf(uint64) int { return 0 }
func (t sessionReplayTarget) ApplyShard(_ int, ops []core.EdgeOp) (inserted, deleted int) {
	for _, op := range ops {
		if op.Del {
			if t.g.DeleteEdge(op.Src, op.Dst) {
				deleted++
			}
		} else {
			if t.g.InsertEdge(op.Src, op.Dst, op.Weight) {
				inserted++
			}
		}
	}
	return inserted, deleted
}

// appendBatch logs one batch's ops in application order. The first append
// failure degrades the session: later batches must not be acknowledged
// past an unlogged one, or the WAL would stop being a prefix of the
// acknowledged stream and recovery would resurrect the refused batch.
func (d *sessionDurability) appendBatch(b Batch) error {
	if d.failed {
		return ErrDurabilityDegraded
	}
	n := len(b.Insert) + len(b.Delete)
	if n == 0 {
		return nil
	}
	ops := make([]Update, 0, n)
	for _, e := range b.Insert {
		ops = append(ops, core.InsertOp(e.Src, e.Dst, e.Weight))
	}
	for _, e := range b.Delete {
		ops = append(ops, core.DeleteOp(e.Src, e.Dst))
	}
	if _, err := d.log.Append(ops); err != nil {
		d.failed = true
		return fmt.Errorf("graphtinker: durable session: batch not applied: %w", err)
	}
	return nil
}

// EnableDurability makes the session crash-safe from here on: every
// subsequent batch is WAL-logged before it is applied, and Checkpoint
// compacts the log into a snapshot. The directory must not already hold
// recovery state (use Recover for that), and the session must not have
// applied unlogged batches. A session whose graph already has edges (built
// before enabling) is checkpointed immediately, so that prior state is
// covered too. Returns the session's WAL for telemetry inspection.
func (s *Session) EnableDurability(dir string, opts DurabilityOptions) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil {
		return fmt.Errorf("graphtinker: session durability already enabled")
	}
	if s.batches > 0 {
		return fmt.Errorf("graphtinker: session has already applied %d unlogged batches; enable durability before applying, or Recover into a fresh session", s.batches)
	}
	if _, ok, err := wal.LoadManifest(dir); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("graphtinker: %s already holds recovery state; use Session.Recover", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("graphtinker: durable session: %w", err)
	}
	log, err := wal.Open(walDir(dir), wal.Options{
		SegmentBytes: opts.SegmentBytes,
		SyncInterval: opts.SyncInterval,
		Recorder:     opts.Recorder,
	})
	if err != nil {
		return err
	}
	if next := log.NextLSN(); next > 0 {
		_ = log.Close() // abandoning open; the misuse error below is the signal
		return fmt.Errorf("graphtinker: %s already holds %d logged ops; use Session.Recover", dir, next)
	}
	s.dur = &sessionDurability{dir: dir, log: log, opts: opts}
	if s.graph.NumEdges() > 0 {
		// Pre-existing edges are not in the log; bake them into an
		// immediate LSN-0 checkpoint so recovery starts from them.
		//gtlint:ignore lockhold checkpoint snapshots under s.mu by design: the single-writer lock is what keeps the snapshot consistent
		if err := s.checkpointLocked(); err != nil {
			_ = log.Close()
			s.dur = nil
			return err
		}
	}
	return nil
}

// Recover rebuilds the session's graph from a durability directory —
// manifest-validated snapshot plus an idempotent replay of the WAL tail
// (ops the snapshot already covers are never re-applied) — and leaves the
// session durable against the same directory. The session must be fresh:
// no applied batches, no attached programs (they would reference the
// replaced graph), durability not yet enabled. An empty directory recovers
// to an empty graph and is equivalent to EnableDurability.
func (s *Session) Recover(dir string) (RecoveryInfo, error) {
	return s.RecoverWithOptions(dir, DurabilityOptions{})
}

// RecoverWithOptions is Recover with an explicit WAL/checkpoint policy for
// the session's continued operation.
func (s *Session) RecoverWithOptions(dir string, opts DurabilityOptions) (RecoveryInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur != nil {
		return RecoveryInfo{}, fmt.Errorf("graphtinker: session durability already enabled")
	}
	if s.batches > 0 || s.graph.NumEdges() > 0 {
		return RecoveryInfo{}, fmt.Errorf("graphtinker: Recover requires a fresh session (graph already has state)")
	}
	if len(s.engines) > 0 {
		return RecoveryInfo{}, fmt.Errorf("graphtinker: Recover requires no attached programs (attach after recovery)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return RecoveryInfo{}, fmt.Errorf("graphtinker: recover: %w", err)
	}

	m, haveManifest, err := wal.LoadManifest(dir)
	if err != nil {
		return RecoveryInfo{}, err
	}
	var info RecoveryInfo
	if haveManifest && m.Snapshot != "" {
		f, err := openSnapshot(dir, m)
		if err != nil {
			return RecoveryInfo{}, err
		}
		g, err := core.ReadSnapshot(f, nil)
		_ = f.Close() // read-only; the snapshot decode error is the signal
		if err != nil {
			return RecoveryInfo{}, fmt.Errorf("graphtinker: recover: %w", err)
		}
		s.graph = g
		if s.rec != nil {
			s.graph.Instrument(s.rec)
		}
		info = RecoveryInfo{Recovered: true, SnapshotOps: m.LastLSN}
	}

	log, err := wal.Open(walDir(dir), wal.Options{
		SegmentBytes: opts.SegmentBytes,
		SyncInterval: opts.SyncInterval,
		Recorder:     opts.Recorder,
	})
	if err != nil {
		return RecoveryInfo{}, err
	}
	if next := log.NextLSN(); next < m.LastLSN {
		_ = log.Close() // abandoning open; the recovery error below is the signal
		return RecoveryInfo{}, fmt.Errorf("graphtinker: recover: wal ends at LSN %d but manifest snapshot covers %d (log lost behind checkpoint)", next, m.LastLSN)
	}
	// Replay the tail in LSN order; records straddling the snapshot
	// boundary arrive pre-sliced, so nothing applies twice. A session's
	// graph is one shard, so ReplayInto applies inline on the decoder.
	replayed, err := wal.ReplayInto(walDir(dir), m.LastLSN, opts.Recorder, sessionReplayTarget{s.graph})
	if err != nil {
		_ = log.Close()
		return RecoveryInfo{}, err
	}
	if replayed > m.LastLSN {
		info.ReplayedOps = replayed - m.LastLSN
		info.Recovered = true
	}
	s.dur = &sessionDurability{dir: dir, log: log, opts: opts, lastCkpt: m.LastLSN, epoch: m.Epoch, info: info}
	return info, nil
}

// Checkpoint fsyncs the log and atomically installs a snapshot + manifest
// covering every op logged so far, then prunes redundant WAL segments.
func (s *Session) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur == nil {
		return fmt.Errorf("graphtinker: session durability not enabled")
	}
	//gtlint:ignore lockhold checkpoint snapshots under s.mu by design: the single-writer lock is what keeps the snapshot consistent
	return s.checkpointLocked()
}

func (s *Session) checkpointLocked() error {
	d := s.dur
	if d.failed {
		// A degraded log may hold a torn tail; snapshotting in-memory state
		// the log doesn't cover (and pruning it) would make the loss
		// permanent.
		return ErrDurabilityDegraded
	}
	if err := d.log.Sync(); err != nil {
		return fmt.Errorf("graphtinker: checkpoint: %w", err)
	}
	lsn := d.log.NextLSN()
	name := snapName(lsn)
	crc, size, err := installSnapshot(d.dir, name, func(f *os.File) error {
		return s.graph.WriteSnapshot(f)
	})
	if err != nil {
		return err
	}
	if err := wal.WriteManifest(d.dir, wal.Manifest{
		Snapshot:      name,
		LastLSN:       lsn,
		SnapshotCRC:   crc,
		SnapshotBytes: size,
		Shards:        1,
		Epoch:         d.epoch,
	}); err != nil {
		return err
	}
	if _, err := d.log.Prune(lsn); err != nil {
		return err
	}
	removeStaleSnapshots(d.dir, name, d.opts.Recorder)
	d.lastCkpt = lsn
	d.sinceCkpt = 0
	return nil
}

// DurabilityInfo reports the session's recovery provenance (zero when
// durability is off or the directory was fresh).
func (s *Session) DurabilityInfo() RecoveryInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur == nil {
		return RecoveryInfo{}
	}
	return s.dur.info
}

// CloseDurability fsyncs and closes the session's WAL and detaches it;
// subsequent batches apply without logging. No-op when durability is off.
func (s *Session) CloseDurability() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur == nil {
		return nil
	}
	err := s.dur.log.Close()
	s.dur = nil
	return err
}

// CrashDurability abandons the WAL the way a killed process would —
// buffers dropped, nothing synced — and detaches durability. Only ops
// already durable survive a subsequent Recover. Built for the chaos suite.
func (s *Session) CrashDurability() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur == nil {
		return
	}
	s.dur.log.Crash()
	s.dur = nil
}
