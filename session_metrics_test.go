package graphtinker

import (
	"encoding/json"
	"testing"
)

func TestSessionMetricsSnapshot(t *testing.T) {
	s := newSessionT(t)
	rec := s.EnableMetrics()
	if rec == nil || s.EnableMetrics() != rec {
		t.Fatalf("EnableMetrics not idempotent")
	}
	if err := s.Attach("bfs", BFS(0), DefaultAttachmentPolicy()); err != nil {
		t.Fatal(err)
	}

	edges := []Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1}, {Src: 0, Dst: 3, Weight: 1},
	}
	s.ApplyBatch(Batch{Insert: edges})
	s.ApplyBatch(Batch{Delete: edges[3:]})
	if _, err := s.Recompute("bfs"); err != nil {
		t.Fatal(err)
	}

	m := s.MetricsSnapshot()
	if m.Batches != 2 || m.Inserted != 4 || m.Deleted != 1 {
		t.Fatalf("batch accounting wrong: %+v", m)
	}
	if m.Store.Inserts != 4 || m.Store.Deletes != 1 {
		t.Fatalf("store stats not captured: %+v", m.Store)
	}
	if m.Updates == nil {
		t.Fatalf("updates histograms missing after EnableMetrics")
	}
	if got := m.Updates.InsertLatencyNs.Count; got != 4 {
		t.Fatalf("insert latency samples = %d, want 4", got)
	}
	pm, ok := m.Programs["bfs"]
	if !ok {
		t.Fatalf("bfs program metrics missing")
	}
	// Run 1: incremental after inserts. Run 2: recompute (deletion batch).
	// Run 3: explicit Recompute.
	if pm.Runs != 3 || pm.Recomputes != 2 {
		t.Fatalf("program run accounting: %+v", pm)
	}
	if len(pm.Aggregate.Iterations) != pm.Aggregate.FullIterations+pm.Aggregate.IncrementalIterations {
		t.Fatalf("aggregate trace inconsistent: %d iterations vs %d+%d",
			len(pm.Aggregate.Iterations), pm.Aggregate.FullIterations, pm.Aggregate.IncrementalIterations)
	}
	if pm.Aggregate.EdgesLoaded == 0 {
		t.Fatalf("aggregate recorded no work")
	}

	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"batches", "store", "updates", "programs"} {
		if _, present := decoded[key]; !present {
			t.Fatalf("snapshot JSON missing %q", key)
		}
	}
	upd := decoded["updates"].(map[string]any)
	if _, present := upd["insert_latency_ns"]; !present {
		t.Fatalf("updates JSON missing insert_latency_ns: %v", upd)
	}
}

func TestSessionMetricsWithoutEnable(t *testing.T) {
	s := newSessionT(t)
	s.ApplyBatch(Batch{Insert: []Edge{{Src: 0, Dst: 1, Weight: 1}}})
	m := s.MetricsSnapshot()
	if m.Updates != nil {
		t.Fatalf("updates present without EnableMetrics")
	}
	if m.Batches != 1 || m.Store.Inserts != 1 {
		t.Fatalf("snapshot wrong without recorder: %+v", m)
	}
}
