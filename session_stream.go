package graphtinker

// Async ingestion for sessions: StartStream/ApplyAsync enqueue batches on
// a bounded queue drained by one background worker that funnels into
// ApplyBatch — so the single-writer contract (see Session) holds with any
// number of producers, and attached programs keep their per-batch
// semantics. For raw sharded throughput without per-batch analytics, use
// the internal/ingest pipeline over a Parallel store via NewStreamPipeline.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"graphtinker/internal/ingest"
)

// ErrStreamClosed is returned by ApplyAsync after Close.
var ErrStreamClosed = ingest.ErrClosed

// ErrBackpressure is returned under RejectWhenFull when the stream queue
// is full.
var ErrBackpressure = ingest.ErrBackpressure

// BackpressurePolicy selects what ApplyAsync does when the queue is full.
type BackpressurePolicy = ingest.Policy

const (
	// BlockWhenFull makes ApplyAsync wait for queue space (default).
	BlockWhenFull = ingest.Block
	// RejectWhenFull makes ApplyAsync fail fast with ErrBackpressure.
	RejectWhenFull = ingest.Reject
)

// StreamRecorder carries the async-path telemetry instruments (queue-depth
// gauge, batch-size and latency histograms); it is the ingest package's
// recorder, so session streams and sharded pipelines share one metrics
// vocabulary.
type StreamRecorder = ingest.Recorder

// StreamRecorderSnapshot is the JSON form of a StreamRecorder.
type StreamRecorderSnapshot = ingest.RecorderSnapshot

// NewStreamRecorder builds a recorder with the default bounds.
func NewStreamRecorder() *StreamRecorder { return ingest.NewRecorder() }

// StreamOptions configures a session stream; zero values select defaults.
type StreamOptions struct {
	// QueueDepth bounds batches enqueued but not yet applied (default 16).
	QueueDepth int
	// Policy selects blocking or rejecting backpressure.
	Policy BackpressurePolicy
	// Recorder, when non-nil, receives queue-depth/batch-size/latency
	// telemetry for the async path.
	Recorder *StreamRecorder
}

// Completion is the handle ApplyAsync returns: it resolves once the batch
// has been applied and every attached program has run on the result.
type Completion struct {
	done chan struct{}
	out  BatchOutcome
}

// Done returns a channel closed when the batch's outcome is available.
func (c *Completion) Done() <-chan struct{} { return c.done }

// Wait blocks for the outcome.
func (c *Completion) Wait() BatchOutcome {
	<-c.done
	return c.out
}

type streamItem struct {
	b       Batch
	c       *Completion
	barrier chan struct{}
	at      time.Time
}

// SessionStream is the async ingestion front of one session. Producers may
// call ApplyAsync concurrently; batches are applied strictly in enqueue
// order by a single worker.
type SessionStream struct {
	s    *Session
	opts StreamOptions
	rec  *StreamRecorder

	q    *streamQueue
	done chan struct{}
}

// StartStream starts the session's async worker. One stream may be active
// per session at a time; Close it to start another.
func (s *Session) StartStream(opts StreamOptions) (*SessionStream, error) {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	st := &SessionStream{
		s:    s,
		opts: opts,
		rec:  opts.Recorder,
		q:    newStreamQueue(opts.QueueDepth),
		done: make(chan struct{}),
	}
	s.mu.Lock()
	if s.stream != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("graphtinker: session already has an active stream")
	}
	s.stream = st
	s.mu.Unlock()
	go st.run()
	return st, nil
}

// Stream returns the session's active async stream, or nil. Useful for
// draining or closing a stream that ApplyAsync started lazily.
func (s *Session) Stream() *SessionStream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stream
}

// ApplyAsync enqueues a batch on the session's stream, starting one with
// default options if none is active, and returns its completion handle.
func (s *Session) ApplyAsync(b Batch) (*Completion, error) {
	s.mu.Lock()
	st := s.stream
	s.mu.Unlock()
	if st == nil {
		var err error
		if st, err = s.StartStream(StreamOptions{}); err != nil {
			// Raced with another caller's lazy start; reuse theirs.
			s.mu.Lock()
			st = s.stream
			s.mu.Unlock()
			if st == nil {
				return nil, err
			}
		}
	}
	return st.ApplyAsync(b)
}

// ApplyAsync enqueues one batch and returns its completion handle. Under
// BlockWhenFull it waits for queue space; under RejectWhenFull it returns
// ErrBackpressure when the queue is full.
func (st *SessionStream) ApplyAsync(b Batch) (*Completion, error) {
	c := &Completion{done: make(chan struct{})}
	item := streamItem{b: b, c: c, at: time.Now()}
	if err := st.q.push(item, st.opts.Policy == RejectWhenFull); err != nil {
		if st.rec != nil && errors.Is(err, ErrBackpressure) {
			st.rec.Rejected.Inc()
		}
		return nil, err
	}
	if st.rec != nil {
		st.rec.QueueDepth.Set(int64(st.q.len()))
	}
	return c, nil
}

// Drain is the read-your-writes barrier: it returns once every batch
// enqueued before the call has been applied (and its programs run).
func (st *SessionStream) Drain() {
	barrier := make(chan struct{})
	if err := st.q.push(streamItem{barrier: barrier}, false); err != nil {
		// Closed: the worker drains everything before exiting.
		<-st.done
		return
	}
	<-barrier
}

// Close drains the queue, stops the worker, and detaches the stream from
// the session. Pending completions still resolve. Idempotent.
func (st *SessionStream) Close() {
	st.q.close()
	<-st.done
	st.s.mu.Lock()
	if st.s.stream == st {
		st.s.stream = nil
	}
	st.s.mu.Unlock()
}

// streamQueue is a bounded FIFO of stream items: pushes block (or reject)
// at capacity, pops block while empty, and close wakes everyone.
type streamQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	items  []streamItem
	cap    int
	closed bool
}

func newStreamQueue(capacity int) *streamQueue {
	q := &streamQueue{cap: capacity}
	q.cond.L = &q.mu
	return q
}

func (q *streamQueue) push(item streamItem, reject bool) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.closed {
			return ErrStreamClosed
		}
		if len(q.items) < q.cap {
			q.items = append(q.items, item)
			q.cond.Broadcast()
			return nil
		}
		if reject {
			return ErrBackpressure
		}
		q.cond.Wait()
	}
}

func (q *streamQueue) pop() (streamItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.items) > 0 {
			item := q.items[0]
			q.items = q.items[1:]
			q.cond.Broadcast()
			return item, true
		}
		if q.closed {
			return streamItem{}, false
		}
		q.cond.Wait()
	}
}

func (q *streamQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *streamQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

func (st *SessionStream) run() {
	defer close(st.done)
	for {
		item, ok := st.q.pop()
		if !ok {
			return
		}
		if st.rec != nil {
			st.rec.QueueDepth.Set(int64(st.q.len()))
		}
		if item.barrier != nil {
			close(item.barrier)
			continue
		}
		start := time.Now()
		out := st.s.ApplyBatch(item.b)
		if st.rec != nil {
			done := time.Now()
			st.rec.ApplyLatency.ObserveDuration(done.Sub(start))
			st.rec.FlushLatency.ObserveDuration(done.Sub(item.at))
			st.rec.BatchSize.Observe(uint64(len(item.b.Insert) + len(item.b.Delete)))
			st.rec.Flushes.Inc()
		}
		item.c.out = out
		close(item.c.done)
	}
}
