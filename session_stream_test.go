package graphtinker

// Tests for the session's concurrency contract: the single-writer guard on
// ApplyBatch (regression for the previously unguarded concurrent-mutation
// hazard) and the async StartStream/ApplyAsync layer built on top of it.
// The suite runs in CI under -race.

import (
	"sync"
	"testing"
)

// TestSessionConcurrentApplyBatch is the regression test for the
// single-writer guard: many goroutines calling ApplyBatch concurrently
// (with a program attached, so engine runs are in the critical section too)
// must serialize cleanly and leave the deterministic final edge set.
func TestSessionConcurrentApplyBatch(t *testing.T) {
	s, err := NewSession(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Attach("cc", CC(), DefaultAttachmentPolicy()); err != nil {
		t.Fatal(err)
	}

	const callers, batches, perBatch = 8, 20, 16
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c * 10000)
			for b := 0; b < batches; b++ {
				batch := Batch{}
				for i := 0; i < perBatch; i++ {
					batch.Insert = append(batch.Insert, Edge{
						Src:    base + uint64(b),
						Dst:    base + uint64(b*perBatch+i+1),
						Weight: 1,
					})
				}
				out := s.ApplyBatch(batch)
				if out.Inserted != perBatch {
					t.Errorf("caller %d batch %d: inserted %d, want %d", c, b, out.Inserted, perBatch)
				}
				if _, ok := out.Runs["cc"]; !ok {
					t.Errorf("caller %d batch %d: program did not run", c, b)
				}
			}
		}(c)
	}
	wg.Wait()

	want := uint64(callers * batches * perBatch)
	if got := s.Graph().NumEdges(); got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	m := s.MetricsSnapshot()
	if m.Batches != callers*batches || m.Inserted != int(want) {
		t.Fatalf("metrics batches=%d inserted=%d, want %d/%d", m.Batches, m.Inserted, callers*batches, want)
	}
}

func TestSessionStreamOrderedCompletions(t *testing.T) {
	s, err := NewSession(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewStreamRecorder()
	st, err := s.StartStream(StreamOptions{QueueDepth: 4, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}

	var comps []*Completion
	for i := 0; i < 10; i++ {
		c, err := st.ApplyAsync(Batch{Insert: []Edge{{Src: uint64(i), Dst: uint64(i + 100), Weight: 1}}})
		if err != nil {
			t.Fatal(err)
		}
		comps = append(comps, c)
	}
	st.Drain()
	// After the barrier every earlier batch is visible: read-your-writes.
	if got := s.Graph().NumEdges(); got != 10 {
		t.Fatalf("NumEdges after Drain = %d, want 10", got)
	}
	for i, c := range comps {
		select {
		case <-c.Done():
		default:
			t.Fatalf("completion %d not resolved after Drain", i)
		}
		if out := c.Wait(); out.Inserted != 1 {
			t.Fatalf("completion %d inserted %d, want 1", i, out.Inserted)
		}
	}
	st.Close()

	snap := rec.Snapshot()
	if snap.Flushes != 10 || snap.BatchSize.Sum != 10 {
		t.Fatalf("recorder flushes=%d batch sum=%d, want 10/10", snap.Flushes, snap.BatchSize.Sum)
	}
	if snap.QueueDepth != 0 {
		t.Fatalf("queue depth after close = %d", snap.QueueDepth)
	}
}

func TestSessionStreamSingleActiveAndRestart(t *testing.T) {
	s, err := NewSession(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.StartStream(StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartStream(StreamOptions{}); err == nil {
		t.Fatal("second StartStream should fail while one is active")
	}
	st.Close()
	st.Close() // idempotent
	if _, err := st.ApplyAsync(Batch{}); err != ErrStreamClosed {
		t.Fatalf("ApplyAsync after Close: %v, want ErrStreamClosed", err)
	}
	st2, err := s.StartStream(StreamOptions{})
	if err != nil {
		t.Fatalf("restart after Close: %v", err)
	}
	st2.Close()
}

func TestSessionStreamRejectBackpressure(t *testing.T) {
	s, err := NewSession(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := NewStreamRecorder()
	st, err := s.StartStream(StreamOptions{QueueDepth: 2, Policy: RejectWhenFull, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}

	// Stall the worker on the session mutex so the queue backs up
	// deterministically: at most one item can leave the queue, so pushing
	// QueueDepth+2 batches must reject at least once.
	s.mu.Lock()
	rejected := 0
	for i := 0; i < 4; i++ {
		if _, err := st.ApplyAsync(Batch{Insert: []Edge{{Src: uint64(i), Dst: 1, Weight: 1}}}); err == ErrBackpressure {
			rejected++
		} else if err != nil {
			s.mu.Unlock()
			t.Fatal(err)
		}
	}
	s.mu.Unlock()
	if rejected == 0 {
		t.Fatal("expected at least one ErrBackpressure with a stalled worker")
	}
	st.Drain()
	st.Close()
	if got := rec.Snapshot().Rejected; got != uint64(rejected) {
		t.Fatalf("recorder rejected=%d, want %d", got, rejected)
	}
	if got := s.Graph().NumEdges(); got != uint64(4-rejected) {
		t.Fatalf("NumEdges = %d, want %d", got, 4-rejected)
	}
}

func TestSessionApplyAsyncLazyStartConcurrent(t *testing.T) {
	s, err := NewSession(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const producers, each = 4, 50
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := uint64(p * 1000)
			for i := 0; i < each; i++ {
				c, err := s.ApplyAsync(Batch{Insert: []Edge{{Src: base + uint64(i), Dst: base, Weight: 1}}})
				if err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
				if out := c.Wait(); out.Inserted != 1 {
					t.Errorf("producer %d op %d: inserted %d", p, i, out.Inserted)
				}
			}
		}(p)
	}
	wg.Wait()

	st := s.Stream()
	if st == nil {
		t.Fatal("lazy ApplyAsync left no active stream")
	}
	st.Close()
	if s.Stream() != nil {
		t.Fatal("Close should detach the stream")
	}
	if got := s.Graph().NumEdges(); got != producers*each {
		t.Fatalf("NumEdges = %d, want %d", got, producers*each)
	}
}

// Streaming and synchronous callers may interleave: both funnel through the
// session mutex, so nothing is lost and programs always see quiescent state.
func TestSessionStreamInterleavedWithSyncApply(t *testing.T) {
	s, err := NewSession(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.StartStream(StreamOptions{QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, err := st.ApplyAsync(Batch{Insert: []Edge{{Src: uint64(i), Dst: 1, Weight: 1}}}); err != nil {
				t.Errorf("async: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			s.ApplyBatch(Batch{Insert: []Edge{{Src: 10000 + uint64(i), Dst: 1, Weight: 1}}})
		}
	}()
	wg.Wait()
	st.Close()
	if got := s.Graph().NumEdges(); got != 200 {
		t.Fatalf("NumEdges = %d, want 200", got)
	}
	if m := s.MetricsSnapshot(); m.Batches != 200 {
		t.Fatalf("batches = %d, want 200", m.Batches)
	}
}
