package graphtinker

import (
	"math"
	"testing"
)

func newSessionT(t *testing.T) *Session {
	t.Helper()
	s, err := NewSession(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionAttachDetach(t *testing.T) {
	s := newSessionT(t)
	if err := s.Attach("bfs", BFS(0), DefaultAttachmentPolicy()); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach("bfs", BFS(0), DefaultAttachmentPolicy()); err == nil {
		t.Fatalf("duplicate attach accepted")
	}
	if err := s.Attach("bad", Program{}, DefaultAttachmentPolicy()); err == nil {
		t.Fatalf("invalid program accepted")
	}
	if got := s.Attached(); len(got) != 1 || got[0] != "bfs" {
		t.Fatalf("Attached = %v", got)
	}
	if !s.Detach("bfs") || s.Detach("bfs") {
		t.Fatalf("detach semantics wrong")
	}
}

func TestSessionStreamingBFSAndCC(t *testing.T) {
	s := newSessionT(t)
	if err := s.Attach("bfs", BFS(0), DefaultAttachmentPolicy()); err != nil {
		t.Fatal(err)
	}
	ccPolicy := DefaultAttachmentPolicy()
	ccPolicy.Mode = IncrementalProcessing
	if err := s.Attach("cc", CC(), ccPolicy); err != nil {
		t.Fatal(err)
	}

	out := s.ApplyBatch(Batch{Insert: []Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
	}})
	if out.Inserted != 2 || out.Deleted != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if len(out.Runs) != 2 || len(out.Recomputed) != 0 {
		t.Fatalf("runs = %v recomputed = %v", out.Runs, out.Recomputed)
	}
	if v, err := s.Value("bfs", 2); err != nil || v != 2 {
		t.Fatalf("bfs[2] = (%g,%v)", v, err)
	}
	if v, _ := s.Value("cc", 2); v != 0 {
		t.Fatalf("cc[2] = %g", v)
	}

	// Second insertion batch continues incrementally.
	out = s.ApplyBatch(Batch{Insert: []Edge{{Src: 2, Dst: 3, Weight: 1}}})
	if v, _ := s.Value("bfs", 3); v != 3 {
		t.Fatalf("bfs[3] = %g", v)
	}
	if run := out.Runs["bfs"]; !run.Converged {
		t.Fatalf("bfs run did not converge")
	}
}

func TestSessionDeletionTriggersRecompute(t *testing.T) {
	s := newSessionT(t)
	if err := s.Attach("bfs", BFS(0), DefaultAttachmentPolicy()); err != nil {
		t.Fatal(err)
	}
	s.ApplyBatch(Batch{Insert: []Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 0, Dst: 2, Weight: 1}, {Src: 1, Dst: 2, Weight: 1},
	}})
	if v, _ := s.Value("bfs", 2); v != 1 {
		t.Fatalf("bfs[2] = %g before delete", v)
	}
	// Deleting the direct edge 0->2 must RAISE bfs[2] to 2 — only a
	// recompute can do that.
	out := s.ApplyBatch(Batch{Delete: []Edge{{Src: 0, Dst: 2}}})
	if len(out.Recomputed) != 1 || out.Recomputed[0] != "bfs" {
		t.Fatalf("recompute not triggered: %+v", out)
	}
	if v, _ := s.Value("bfs", 2); v != 2 {
		t.Fatalf("bfs[2] = %g after delete, want 2", v)
	}

	// Disconnect vertex 1 entirely; it must become unreached.
	s.ApplyBatch(Batch{Delete: []Edge{{Src: 0, Dst: 1}}})
	if v, _ := s.Value("bfs", 1); !math.IsInf(v, 1) {
		t.Fatalf("bfs[1] = %g after disconnect", v)
	}
}

func TestSessionNoRecomputeWhenPolicyDisabled(t *testing.T) {
	s := newSessionT(t)
	p := DefaultAttachmentPolicy()
	p.RecomputeOnDelete = false
	if err := s.Attach("cc", CC(), p); err != nil {
		t.Fatal(err)
	}
	s.ApplyBatch(Batch{Insert: []Edge{{Src: 0, Dst: 1, Weight: 1}}})
	out := s.ApplyBatch(Batch{Delete: []Edge{{Src: 0, Dst: 1}}})
	if len(out.Recomputed) != 0 {
		t.Fatalf("recompute ran despite policy: %v", out.Recomputed)
	}
}

func TestSessionDeleteOfAbsentEdgesIsNotADeletion(t *testing.T) {
	s := newSessionT(t)
	if err := s.Attach("bfs", BFS(0), DefaultAttachmentPolicy()); err != nil {
		t.Fatal(err)
	}
	s.ApplyBatch(Batch{Insert: []Edge{{Src: 0, Dst: 1, Weight: 1}}})
	out := s.ApplyBatch(Batch{Delete: []Edge{{Src: 5, Dst: 6}}})
	if out.Deleted != 0 || len(out.Recomputed) != 0 {
		t.Fatalf("phantom deletion triggered recompute: %+v", out)
	}
}

func TestSessionLookupsOnUnknownName(t *testing.T) {
	s := newSessionT(t)
	if _, err := s.Value("nope", 0); err == nil {
		t.Fatalf("unknown name accepted by Value")
	}
	if _, err := s.Recompute("nope"); err == nil {
		t.Fatalf("unknown name accepted by Recompute")
	}
	if _, ok := s.Engine("nope"); ok {
		t.Fatalf("unknown name returned an engine")
	}
}

func TestSessionRecomputeAndEngineAccess(t *testing.T) {
	s := newSessionT(t)
	if err := s.Attach("bfs", BFS(0), DefaultAttachmentPolicy()); err != nil {
		t.Fatal(err)
	}
	s.ApplyBatch(Batch{Insert: []Edge{{Src: 0, Dst: 1, Weight: 1}}})
	res, err := s.Recompute("bfs")
	if err != nil || !res.Converged {
		t.Fatalf("recompute: %v %+v", err, res)
	}
	eng, ok := s.Engine("bfs")
	if !ok || eng.Value(1) != 1 {
		t.Fatalf("engine access broken")
	}
	if s.Graph().NumEdges() != 1 {
		t.Fatalf("graph accessor broken")
	}
}

func TestSessionMatchesManualOrchestration(t *testing.T) {
	// The session must produce identical results to the hand-rolled loop
	// the examples use.
	var batches [][]Edge
	seed := uint64(5)
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return z ^ (z >> 27)
	}
	for b := 0; b < 5; b++ {
		var batch []Edge
		for i := 0; i < 200; i++ {
			batch = append(batch, Edge{Src: next() % 64, Dst: next() % 64, Weight: 1})
		}
		batches = append(batches, batch)
	}

	s := newSessionT(t)
	if err := s.Attach("bfs", BFS(0), DefaultAttachmentPolicy()); err != nil {
		t.Fatal(err)
	}
	manualStore := MustNew(DefaultConfig())
	manual := MustNewEngine(manualStore, BFS(0), EngineOptions{Mode: Hybrid})
	for _, b := range batches {
		s.ApplyBatch(Batch{Insert: b})
		manualStore.InsertBatch(b)
		manual.RunAfterBatch(b)
	}
	eng, _ := s.Engine("bfs")
	if eng.NumVertices() != manual.NumVertices() {
		t.Fatalf("vertex spaces differ")
	}
	for v := uint64(0); v < manual.NumVertices(); v++ {
		sv, _ := s.Value("bfs", v)
		if sv != manual.Value(v) {
			t.Fatalf("val[%d]: session %g, manual %g", v, sv, manual.Value(v))
		}
	}
}
