package graphtinker

// Facade over internal/ingest: the sharded streaming pipeline for raw
// update throughput on a Parallel store. Producers push unbounded
// insert/delete streams; the pipeline coalesces them into batches, flushes
// on size or time, partitions each flush by the store's shard hash, and
// applies shards on a fixed pool of per-shard workers. Concurrent readers
// stay safe throughout (the Parallel store takes per-shard read locks);
// Flush gives read-your-writes. For per-batch analytics instead of raw
// throughput, see Session.StartStream.

import "graphtinker/internal/ingest"

// Update is one streaming edge operation (insert or delete).
type Update = ingest.Update

// InsertUpdate makes an insert op for a streaming pipeline.
func InsertUpdate(src, dst uint64, w float32) Update { return ingest.Insert(src, dst, w) }

// DeleteUpdate makes a delete op for a streaming pipeline.
func DeleteUpdate(src, dst uint64) Update { return ingest.Delete(src, dst) }

// StreamPipeline is the sharded streaming ingestion pipeline.
type StreamPipeline = ingest.Pipeline

// StreamPipelineOptions configures batching, flushing, and backpressure.
type StreamPipelineOptions = ingest.Options

// StreamTotals summarizes a pipeline's lifetime work.
type StreamTotals = ingest.Totals

// NewStreamPipeline starts a streaming pipeline over a sharded store. The
// pipeline owns the write path while it is open; queries on p remain safe
// concurrently.
func NewStreamPipeline(p *Parallel, opts StreamPipelineOptions) (*StreamPipeline, error) {
	return ingest.New(p, opts)
}
